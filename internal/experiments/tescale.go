package experiments

// TEScale is the traffic-engineering-at-production-scale suite behind
// DESIGN.md §10: solve-time scaling of the exact SB-LP simplex vs the
// SB-DP heuristic across problem sizes (with the SB-DP optimality gap),
// warm-started incremental re-solve vs cold re-solve on single-chain
// churn, SB-DP solve throughput on expanded topologies of a few hundred
// sites, and sustained chain-setup throughput through the Global
// Switchboard with and without batched admission.

import (
	"fmt"
	"sync"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/model"
	"switchboard/internal/simnet"
	"switchboard/internal/te"
	"switchboard/internal/topology"
	"switchboard/internal/vnf"
	"switchboard/internal/workload"
)

// teScaleInstance builds a TE instance with a configurable site count,
// the knob the solve-time grid sweeps (the Figure 12/13 instances pin 6
// sites).
func teScaleInstance(chains, sites int, seed int64) *model.Network {
	nw := topology.Backbone(topology.Options{BackgroundFraction: 0.2})
	workload.Populate(nw, workload.ChainGenOptions{
		NumChains:    chains,
		NumVNFs:      20,
		NumSites:     sites,
		Coverage:     0.5,
		SiteCapacity: 1600,
		CPUPerByte:   1.0,
		TotalTraffic: 800,
		ReverseRatio: 0.2,
		Seed:         seed,
	})
	return nw
}

// lpCompositeObjective is the SB-LP composite objective (admitted
// throughput minus the latency tiebreak) of a routing, the quantity the
// warm and cold solvers agree on and the baseline for SB-DP's gap.
func lpCompositeObjective(nw *model.Network, r *model.Routing) float64 {
	ev := te.Evaluate(nw, r)
	return ev.Throughput - 0.1*ev.LatencyObjective
}

const teScaleLPOpts = "objective=max-throughput skip-link"

// solveGrid runs the solve-time grid: exact SB-LP vs SB-DP wall time
// and throughput gap per (sites, chains) point.
func solveGrid(t *Table) error {
	for _, pt := range []struct{ sites, chains int }{
		{6, 15}, {6, 30}, {8, 30}, {8, 60},
	} {
		nw := teScaleInstance(pt.chains, pt.sites, 31)
		label := fmt.Sprintf("sites=%d chains=%d", pt.sites, pt.chains)

		start := time.Now()
		lpRouting, err := te.SolveLP(nw, te.LPOptions{Objective: te.MaxThroughput, SkipLinkConstraints: true})
		if err != nil {
			return fmt.Errorf("tescale grid %s: %w", label, err)
		}
		lpMs := time.Since(start).Seconds() * 1000
		lp := te.Evaluate(nw, lpRouting)

		start = time.Now()
		dpRouting := te.SolveDP(nw, te.DPOptions{})
		dpMs := time.Since(start).Seconds() * 1000
		dp := te.Evaluate(nw, dpRouting)

		gap := 0.0
		if lp.Throughput > 0 {
			gap = (1 - dp.Throughput/lp.Throughput) * 100
		}
		t.AddRow("solve_ms", "SB-LP", label, lpMs, "ms", teScaleLPOpts)
		t.AddRow("solve_ms", "SB-DP", label, dpMs, "ms",
			fmt.Sprintf("gap=%.1f%% (tput %.1f vs %.1f)", gap, dp.Throughput, lp.Throughput))
	}
	return nil
}

// warmVsCold measures single-chain churn at the largest grid point:
// arrival and departure re-solved warm (retained simplex tableau)
// versus a cold from-scratch solve of the same population.
func warmVsCold(t *Table) error {
	const sites, chains = 8, 60
	nw := teScaleInstance(chains, sites, 31)
	opts := te.LPOptions{Objective: te.MaxThroughput, SkipLinkConstraints: true}

	// The churn chain: a fresh arrival synthesized like the workload's.
	extra := &model.Chain{
		ID:      "tescale-arrival",
		Ingress: nw.Nodes[0],
		Egress:  nw.Nodes[1],
		VNFs:    []model.VNFID{workload.VNFName(0), workload.VNFName(1), workload.VNFName(2)},
	}
	extra.UniformTraffic(8, 2)

	inc, err := te.NewIncrementalLP(nw, opts)
	if err != nil {
		return fmt.Errorf("tescale warm: %w", err)
	}
	warmBefore, coldBefore := te.Stats().WarmStarts(), te.Stats().ColdFallbacks()

	// Warm: arrival then departure, re-solved on the retained tableau.
	start := time.Now()
	if err := inc.AddChain(extra); err != nil {
		return fmt.Errorf("tescale warm add: %w", err)
	}
	warmAddMs := time.Since(start).Seconds() * 1000
	warmObj := inc.Objective()

	// Cold: the same 61-chain population solved from scratch.
	start = time.Now()
	coldRouting, err := te.SolveLP(nw, opts)
	if err != nil {
		return fmt.Errorf("tescale cold: %w", err)
	}
	coldMs := time.Since(start).Seconds() * 1000
	coldObj := lpCompositeObjective(nw, coldRouting)

	start = time.Now()
	if err := inc.RemoveChain(extra.ID); err != nil {
		return fmt.Errorf("tescale warm remove: %w", err)
	}
	warmRemoveMs := time.Since(start).Seconds() * 1000

	speedup := 0.0
	if warmAddMs > 0 {
		speedup = coldMs / warmAddMs
	}
	label := fmt.Sprintf("sites=%d chains=%d+1", sites, chains)
	t.AddRow("warm_vs_cold", "cold", label, coldMs, "ms", teScaleLPOpts)
	t.AddRow("warm_vs_cold", "warm-add", label, warmAddMs, "ms",
		fmt.Sprintf("speedup=%.1fx obj warm=%.3f cold=%.3f", speedup, warmObj, coldObj))
	t.AddRow("warm_vs_cold", "warm-remove", label, warmRemoveMs, "ms",
		fmt.Sprintf("warm_starts=%d cold_fallbacks=%d",
			te.Stats().WarmStarts()-warmBefore, te.Stats().ColdFallbacks()-coldBefore))
	return nil
}

// dpScale runs SB-DP on expanded topologies past the 25-city backbone:
// a few hundred sites, 600 chains, reporting solve throughput.
func dpScale(t *Table) {
	for _, n := range []int{100, 200, 300} {
		nw := topology.Expanded(n, topology.Options{BackgroundFraction: 0.2})
		const chains = 600
		workload.Populate(nw, workload.ChainGenOptions{
			NumChains:    chains,
			NumVNFs:      50,
			Coverage:     0.3,
			SiteCapacity: 2000,
			CPUPerByte:   1.0,
			TotalTraffic: 8000,
			ReverseRatio: 0.2,
			Seed:         21,
		})
		start := time.Now()
		r := te.SolveDP(nw, te.DPOptions{})
		el := time.Since(start)
		ev := te.Evaluate(nw, r)
		t.AddRow("dp_scale", "SB-DP", fmt.Sprintf("sites=%d chains=%d", n, chains),
			float64(chains)/el.Seconds(), "chains/s",
			fmt.Sprintf("solve=%.0fms admitted=%.0f/%.0f", el.Seconds()*1000, ev.Throughput, ev.Demand))
	}
}

// admissionThroughput measures sustained chain-setup throughput on the
// Global Switchboard: sequential solo admission versus concurrent
// requests gathered by the batched-admission window.
func admissionThroughput(t *Table) error {
	const nChains = 32
	run := func(mode string, window time.Duration) error {
		sites := []simnet.SiteID{"A", "B", "C", "D", "E", "F"}
		bed, err := NewBed(7, time.Millisecond, sites...)
		if err != nil {
			return err
		}
		defer bed.Close()
		_, reg := bed.EnableObservability()
		for _, s := range sites {
			if _, err := bed.G.RegisterSite(s, 100000); err != nil {
				return err
			}
		}
		bed.AddVNF(controller.VNFConfig{
			Name:        "nat",
			Factory:     func() vnf.Function { return vnf.PassThrough{} },
			LoadPerUnit: 1.0,
			LabelAware:  true,
			Capacity:    map[simnet.SiteID]float64{"B": 1e6, "C": 1e6},
		})
		if window > 0 {
			bed.G.SetAdmissionWindow(window)
			defer bed.G.SetAdmissionWindow(0)
		}

		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, nChains)
		for i := 0; i < nChains; i++ {
			spec := controller.Spec{
				ID:          controller.ChainID(fmt.Sprintf("tescale-%s-%02d", mode, i)),
				IngressSite: "A",
				EgressSite:  "F",
				VNFs:        []string{"nat"},
				ForwardRate: 1,
			}
			if window > 0 {
				wg.Add(1)
				go func(i int, spec controller.Spec) {
					defer wg.Done()
					_, errs[i] = bed.G.CreateChain(spec)
				}(i, spec)
			} else if _, err := bed.G.CreateChain(spec); err != nil {
				return fmt.Errorf("tescale admission %s chain %d: %w", mode, i, err)
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("tescale admission %s chain %d: %w", mode, i, err)
			}
		}
		solves := reg.Histogram("gs.path_compute_ms").Count()
		detail := fmt.Sprintf("sequential, %d TE solves", solves)
		if window > 0 {
			h := reg.Histogram("gs.admission_batch_size")
			count, sum := h.CountSum()
			mean := 0.0
			if count > 0 {
				mean = float64(sum) / float64(count)
			}
			detail = fmt.Sprintf("window=%v batches=%d mean_batch=%.1f, %d TE solves",
				window, count, mean, solves)
		}
		t.AddRow("admission", mode, fmt.Sprintf("chains=%d", nChains),
			float64(nChains)/elapsed.Seconds(), "chains/s", detail)
		return nil
	}
	if err := run("solo", 0); err != nil {
		return err
	}
	return run("batched", 5*time.Millisecond)
}

// TEScale runs the full suite.
func TEScale() (*Table, error) {
	t := &Table{
		ID:     "tescale",
		Title:  "TE at production scale: solver scaling, warm starts, batched admission",
		Header: []string{"section", "solver", "x", "value", "unit", "detail"},
	}
	if err := solveGrid(t); err != nil {
		return nil, err
	}
	if err := warmVsCold(t); err != nil {
		return nil, err
	}
	dpScale(t)
	if err := admissionThroughput(t); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"solve_ms: exact simplex grows superlinearly with sites x chains; SB-DP stays in single-digit ms with a bounded optimality gap",
		"warm_vs_cold: single-chain churn re-solved on the retained tableau vs a cold from-scratch solve of the same population",
		"dp_scale: SB-DP on Expanded topologies (metro-satellite growth of the 25-city core); link capacity is advisory to the heuristic, as in the controller's usage",
		"admission: end-to-end CreateChain throughput through the Global Switchboard, solo vs one joint solve per admission window; at simulator scale SB-DP solves are microseconds so the window dominates batched wall time — the batch's win is O(1) solves and route publishes per window, which inverts the economics at production solve costs (see the solve_ms section)")
	return t, nil
}
