package experiments

import (
	"fmt"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/edge"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
	"switchboard/internal/slo"
	"switchboard/internal/testutil"
	"switchboard/internal/vnf"
)

// SLO runs the per-chain SLO pipeline end to end: three chains with
// TE-derived latency budgets share a VNF site, the site is blacked out,
// and the table reports — from the alert log alone — how long each
// chain's alert took to fire after the fault and to resolve after the
// control plane rerouted, cross-checked against the failover span
// timeline the detector records.
func SLO() (*Table, error) {
	t, _, err := sloRound()
	return t, err
}

// sloChains are the experiment's chains: all share the "fw" VNF, so one
// site blackout breaches every budget at once. Traffic is told apart by
// destination port.
var sloChains = []struct {
	ID   controller.ChainID
	Port uint16
}{
	{"gold", 80},
	{"silver", 81},
	{"bronze", 82},
}

// sloTracked is one chain's route handle.
type sloTracked struct {
	route *controller.RouteRecord
}

// sloRound is the testable body of SLO: it also returns the recorder so
// tests can re-derive the failover window from the raw span tree.
func sloRound() (*Table, *obs.Recorder, error) {
	t := &Table{
		ID:    "slo",
		Title: "per-chain SLO alerts through a site blackout: time-to-fire, time-to-resolve",
		Header: []string{"chain", "budget ms", "fire +ms after fault",
			"in failover span", "resolve +ms after reroute", "reason"},
	}

	// Topology: the shared VNF can run at B or C; the A–B path is
	// cheaper, so traffic engineering places every chain's stage at B
	// and the blackout hits all three budgets at once. C is the
	// failover target.
	paths := map[[2]simnet.SiteID]simnet.PathProfile{
		{"GSB", "A"}: {Delay: 2 * time.Millisecond},
		{"GSB", "B"}: {Delay: 2 * time.Millisecond},
		{"GSB", "C"}: {Delay: 2 * time.Millisecond},
		{"A", "B"}:   {Delay: 2 * time.Millisecond},
		{"A", "C"}:   {Delay: 2500 * time.Microsecond},
		{"B", "C"}:   {Delay: 2 * time.Millisecond},
	}
	bed, err := NewBedWithPaths(57, paths, "GSB", "A", "B", "C")
	if err != nil {
		return nil, nil, err
	}
	defer bed.Close()
	g := bed.G
	for _, s := range []simnet.SiteID{"A", "B", "C"} {
		if _, err := g.RegisterSite(s, 1000); err != nil {
			return nil, nil, err
		}
	}
	bed.AddVNF(controller.VNFConfig{
		Name:        "fw",
		Factory:     func() vnf.Function { return vnf.PassThrough{} },
		LoadPerUnit: 1.0,
		LabelAware:  true,
		Capacity:    map[simnet.SiteID]float64{"B": 500, "C": 500},
	})
	rec, reg := bed.EnableObservability()

	for _, s := range []simnet.SiteID{"GSB", "A", "B", "C"} {
		ls, ok := g.Local(s)
		if !ok {
			return nil, nil, fmt.Errorf("slo: no Local Switchboard at %s", s)
		}
		ls.StartHeartbeats(10 * time.Millisecond)
	}
	stopDetector, err := g.StartFailureDetector(controller.DetectorConfig{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 150 * time.Millisecond,
		Debounce:     2,
	})
	if err != nil {
		return nil, nil, err
	}
	defer stopDetector()

	// Chains: budgets left unset, so the controller derives each from
	// the TE solution's achieved path latency times the headroom.
	var ingress, egress *edge.Instance
	tracked := make(map[controller.ChainID]*sloTracked)
	for _, c := range sloChains {
		route, err := g.CreateChain(controller.Spec{
			ID: c.ID, IngressSite: "A", EgressSite: "A",
			VNFs: []string{"fw"}, ForwardRate: 5,
		})
		if err != nil {
			return nil, nil, err
		}
		if route.LatencyBudget <= 0 {
			return nil, nil, fmt.Errorf("slo: chain %s published without a derived latency budget", c.ID)
		}
		ingress, egress, err = g.ConfigureChainEdges(route, []edge.MatchRule{{DstPort: c.Port}})
		if err != nil {
			return nil, nil, err
		}
		tracked[c.ID] = &sloTracked{route: route}
	}
	// Every chain must share one stage host so a single blackout
	// breaches all budgets; the asymmetric A–C delay makes B the
	// deterministic TE choice.
	host := stage1Host(tracked[sloChains[0].ID].route)
	if host == "" {
		return nil, nil, fmt.Errorf("slo: no stage-1 site for %s", sloChains[0].ID)
	}
	for id, tr := range tracked {
		if h := stage1Host(tr.route); h != host {
			return nil, nil, fmt.Errorf("slo: chain %s placed at %s, want shared host %s", id, h, host)
		}
	}
	for _, s := range []simnet.SiteID{"A", host} {
		for id := range tracked {
			if err := g.WaitForDataPath(tracked[id].route, s, 10*time.Second); err != nil {
				return nil, nil, err
			}
		}
	}

	// Telemetry: per-chain trace latency plus the edge's offered/
	// delivered counters feed the evaluator; the ingress-site forwarder
	// contributes explicit drops.
	collector := metrics.NewTraceCollector()
	collector.RegisterMetrics(reg)
	nameOf := make(map[uint32]string, len(tracked))
	for id, tr := range tracked {
		nameOf[tr.route.ChainLabel] = string(id)
	}
	collector.NameChains(func(label uint32) string { return nameOf[label] })

	lsA, _ := g.Local("A")
	fwdA, err := lsA.Forwarder("edge")
	if err != nil {
		return nil, nil, fmt.Errorf("slo: ingress-site forwarder: %w", err)
	}
	ev := slo.New(slo.Config{
		Interval:     20 * time.Millisecond,
		FireAfter:    2,
		ResolveAfter: 5,
		MinLoss:      5,
	})
	ev.RegisterMetrics(reg)
	for id, tr := range tracked {
		sent, delivered := ingress.ChainCounters(tr.route.ChainLabel, string(id))
		_, drops := fwdA.ChainCounters(tr.route.ChainLabel, string(id))
		ev.Track(slo.ChainSLO{
			Chain:     string(id),
			Budget:    tr.route.LatencyBudget,
			E2E:       collector.ChainEndToEnd(string(id)),
			Sent:      sent,
			Delivered: delivered,
			Drops:     drops,
		})
	}
	ev.Start()
	defer ev.Stop()

	// Open-loop traffic: one traced packet per chain every 2ms, fresh
	// source port each send so post-failover packets follow the new
	// route immediately instead of staying pinned to dead flows.
	client, err := bed.Net.Attach(simnet.Addr{Site: "A", Host: "client"}, 8192)
	if err != nil {
		return nil, nil, err
	}
	server, err := bed.Net.Attach(simnet.Addr{Site: "A", Host: "server"}, 8192)
	if err != nil {
		return nil, nil, err
	}
	egress.RegisterHost(expServerIP, server.Addr())
	ingress.RegisterHost(expClientIP, client.Addr())
	stopTraffic := sloTrafficPump(client, server, ingress.Addr(), collector)
	defer stopTraffic()

	// Warm-up: every chain must deliver before the fault so the
	// evaluator's baseline is a healthy bed.
	for id, tr := range tracked {
		_, delivered := egress.ChainCounters(tr.route.ChainLabel, string(id))
		if !testutil.Poll(10*time.Second, func() bool { return delivered() >= 20 }) {
			return nil, nil, fmt.Errorf("slo: chain %s never delivered during warm-up", id)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if got := ev.Firing(); got != 0 {
		return nil, nil, fmt.Errorf("slo: %d alerts firing on a healthy bed", got)
	}

	// Fault: black out the shared stage host. Every packet toward it is
	// swallowed silently, so only the offered-vs-delivered gap betrays
	// the outage.
	faultAt := time.Now()
	bed.Net.BlackoutSite(host)

	// Every chain's alert must fire, detected by the evaluator alone.
	if !testutil.Poll(15*time.Second, func() bool {
		fired := 0
		for _, a := range ev.Alerts() {
			if a.FiredAt.After(faultAt) {
				fired++
			}
		}
		return fired >= len(tracked)
	}) {
		return nil, nil, fmt.Errorf("slo: only %d/%d chains fired within 15s of the fault",
			len(ev.Alerts()), len(tracked))
	}

	// Control plane: detector declares the site failed and reroutes.
	if !testutil.Poll(15*time.Second, func() bool { return g.SiteFailed(host) }) {
		return nil, nil, fmt.Errorf("slo: detector never declared %s failed", host)
	}
	for id := range tracked {
		cid := id
		if !testutil.Poll(15*time.Second, func() bool {
			cur, ok := g.Record(cid)
			return ok && cur.StageSites(1)[host] == 0 && stage1Host(cur) != ""
		}) {
			return nil, nil, fmt.Errorf("slo: chain %s never rerouted off %s", cid, host)
		}
		if !testutil.Poll(15*time.Second, func() bool { return chainReady(g, cid, "A") }) {
			return nil, nil, fmt.Errorf("slo: chain %s data path never ready after reroute", cid)
		}
	}

	// Recovery: traffic drains through the new site and every alert
	// must resolve on its own.
	if !testutil.Poll(20*time.Second, func() bool {
		resolved := 0
		for _, a := range ev.Alerts() {
			if a.FiredAt.After(faultAt) && !a.ResolvedAt.IsZero() {
				resolved++
			}
		}
		return resolved >= len(tracked)
	}) {
		return nil, nil, fmt.Errorf("slo: alerts never resolved after reroute; log: %+v", ev.Alerts())
	}

	// The failover window, from the span tree the detector recorded:
	// every fire must land inside it — the SLO pipeline notices the
	// outage while the control plane is still detecting and rerouting.
	totals := rec.SpansNamed("controlplane.failover")
	if len(totals) == 0 {
		return nil, nil, fmt.Errorf("slo: no controlplane.failover span recorded")
	}
	span := totals[len(totals)-1]
	var handle obs.Span
	for _, k := range rec.Children(span.ID) {
		if k.Name == "controlplane.handle" {
			handle = k
		}
	}
	if handle.ID == 0 {
		return nil, nil, fmt.Errorf("slo: failover span missing handle child")
	}
	rerouteNs := handle.EndNs

	// The table is read from the alert log alone (plus the fault clock
	// and the span window for the cross-check).
	for _, c := range sloChains {
		var alert *slo.Alert
		for i := range ev.Alerts() {
			a := ev.Alerts()[i]
			if a.Chain == string(c.ID) && a.FiredAt.After(faultAt) {
				alert = &a
				break
			}
		}
		if alert == nil {
			return nil, nil, fmt.Errorf("slo: no alert in the log for chain %s", c.ID)
		}
		firedNs := alert.FiredAt.UnixNano()
		inWindow := firedNs >= span.StartNs && firedNs <= span.EndNs
		if !inWindow {
			return nil, nil, fmt.Errorf("slo: chain %s fired at %d outside failover span [%d,%d]",
				c.ID, firedNs, span.StartNs, span.EndNs)
		}
		if alert.ResolvedAt.UnixNano() <= rerouteNs {
			return nil, nil, fmt.Errorf("slo: chain %s resolved before the reroute completed", c.ID)
		}
		t.AddRow(string(c.ID),
			alert.BudgetMs,
			float64(firedNs-faultAt.UnixNano())/1e6,
			"yes",
			float64(alert.ResolvedAt.UnixNano()-rerouteNs)/1e6,
			alert.Reason)
	}
	t.Notes = append(t.Notes,
		"fire/resolve timestamps are read from the SLO alert log alone, not experiment stopwatches",
		"budgets are TE-derived (achieved path latency x headroom), not declared by the experiment",
		fmt.Sprintf("failover span window: %.3f ms wide; every alert fired inside it, before the control plane finished rerouting",
			float64(span.EndNs-span.StartNs)/1e6),
		"resolve +ms is measured from the end of the controlplane.handle span (reroute published)",
		"blackout loss is silent (sends succeed, drop counters stay flat): the loss signal is the ingress/egress counter gap")
	return t, rec, nil
}

// sloTrafficPump drives open-loop traced traffic for every chain and
// harvests completed traces at the server into the collector. Returns a
// stop function.
func sloTrafficPump(client, server *simnet.Endpoint, ingressEdge simnet.Addr,
	collector *metrics.TraceCollector) (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{}, 2)

	// Sender: one packet per chain per tick, fresh source ports.
	go func() {
		defer func() { stopped <- struct{}{} }()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		var sends, traceID uint64
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for _, c := range sloChains {
					traceID++
					p := &packet.Packet{
						Key: packet.FlowKey{
							SrcIP: expClientIP, DstIP: expServerIP,
							SrcPort: uint16(20000 + sends%40000), DstPort: c.Port, Proto: 6,
						},
						Payload: []byte("slo"),
						Trace:   packet.NewTrace(traceID),
					}
					sends++
					_ = client.Send(ingressEdge, p, len(p.Payload)+40)
				}
			}
		}
	}()

	// Server: harvest traces, attributing each to its chain label.
	go func() {
		defer func() { stopped <- struct{}{} }()
		for {
			select {
			case <-done:
				return
			case m, ok := <-server.Inbox():
				if !ok {
					return
				}
				p, ok := m.Payload.(*packet.Packet)
				if !ok || p.Trace == nil {
					continue
				}
				var arrive packet.LazyNow
				packet.TraceArrive(p, "sink:server", &arrive, 1)
				collector.RecordLabeled(p.Trace, p.Labels.Chain)
			}
		}
	}()

	return func() {
		close(done)
		<-stopped
		<-stopped
	}
}
