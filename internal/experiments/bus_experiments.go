package experiments

import (
	"fmt"
	"sync"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/simnet"
)

// Fig9 compares the Switchboard message bus against full-mesh broadcast
// on a star of subscriber sites behind emulated WAN paths with limited
// bandwidth. Full mesh sends one copy per subscriber, queueing at the
// publisher's uplink; the bus sends one copy per site. The paper reports
// >10x lower latency and 57% higher throughput for the bus.
func Fig9() (*Table, error) {
	const (
		subSites    = 4
		subsPerSite = 8
		messages    = 150
		msgSize     = 2000  // bytes
		uplinkBw    = 200e3 // bytes/sec per site pair: a thin control link
		wanDelay    = 20 * time.Millisecond
	)
	t := &Table{
		ID:    "fig9",
		Title: "message bus vs full-mesh broadcast",
		Header: []string{"scheme", "delivered", "WAN msgs", "mean ms", "p99 ms",
			"msgs/sec"},
	}

	run := func(name string, mk func(n *simnet.Network) bus.PubSub) error {
		net := simnet.New(7)
		defer net.Close()
		pubSite := simnet.SiteID("P")
		var sites []simnet.SiteID
		for i := 0; i < subSites; i++ {
			s := simnet.SiteID(fmt.Sprintf("S%d", i))
			sites = append(sites, s)
			net.SetPath(pubSite, s, simnet.PathProfile{Delay: wanDelay, Bandwidth: uplinkBw})
			for _, o := range sites[:len(sites)-1] {
				net.SetPath(o, s, simnet.PathProfile{Delay: wanDelay, Bandwidth: uplinkBw})
			}
		}
		ps := mk(net)
		topic := bus.MakeTopic("c1", "e1", "vnf_G", pubSite, "instances")

		var wg sync.WaitGroup
		hist := metrics.NewHistogram()
		var delivered sync.Map
		total := 0
		for _, s := range sites {
			for k := 0; k < subsPerSite; k++ {
				sub, err := ps.Subscribe(s, topic, messages*2)
				if err != nil {
					return err
				}
				total++
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					count := 0
					timer := time.NewTimer(15 * time.Second)
					defer timer.Stop()
					for count < messages {
						select {
						case pub, ok := <-sub.Ch():
							if !ok {
								delivered.Store(id, count)
								return
							}
							if ts, ok := pub.Payload.(time.Time); ok {
								hist.Observe(time.Since(ts))
							}
							count++
						case <-timer.C:
							delivered.Store(id, count)
							return
						}
					}
					delivered.Store(id, count)
				}(total)
			}
		}
		time.Sleep(100 * time.Millisecond) // let filters install

		start := time.Now()
		for i := 0; i < messages; i++ {
			if err := ps.Publish(pubSite, topic, time.Now(), msgSize); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond) // publisher pacing
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()

		got := 0
		delivered.Range(func(_, v any) bool {
			got += v.(int)
			return true
		})
		rate := float64(got) / elapsed
		t.AddRow(name, fmt.Sprintf("%d/%d", got, messages*total), ps.WANMessages(),
			float64(hist.Mean().Microseconds())/1000,
			float64(hist.Percentile(99).Microseconds())/1000, rate)
		return nil
	}

	if err := run("switchboard-bus", func(n *simnet.Network) bus.PubSub {
		b := bus.New(n)
		_ = b.AddSite("P")
		for i := 0; i < subSites; i++ {
			_ = b.AddSite(simnet.SiteID(fmt.Sprintf("S%d", i)))
		}
		return b
	}); err != nil {
		return nil, err
	}
	if err := run("full-mesh", func(n *simnet.Network) bus.PubSub {
		return bus.NewMesh(n)
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper shape: bus delivers with ~10x lower latency and higher throughput; mesh queues one copy per subscriber at the publisher uplink")
	return t, nil
}
