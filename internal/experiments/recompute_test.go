package experiments

import (
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/edge"
	"switchboard/internal/labels"
	"switchboard/internal/simnet"
	"switchboard/internal/testutil"
	"switchboard/internal/vnf"
)

// TestWindowedTrafficAfterRecompute reproduces the Fig10 scenario at
// small scale and asserts that flows pinned to the second route keep
// making progress (the instance at B processes many round trips).
func TestWindowedTrafficAfterRecompute(t *testing.T) {
	bed, err := NewBed(34, 2*time.Millisecond, "A", "B", "GSB")
	if err != nil {
		t.Fatal(err)
	}
	defer bed.Close()
	g := bed.G
	if _, err := g.RegisterSite("A", 10000); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RegisterSite("B", 10000); err != nil {
		t.Fatal(err)
	}
	var natSeq atomic.Uint32
	nat := bed.AddVNF(controller.VNFConfig{
		Name:        "nat",
		Factory:     func() vnf.Function { return vnf.NewNAT(0x05050500 + natSeq.Add(1)) },
		LoadPerUnit: 1.0,
		LabelAware:  true,
		Capacity:    map[simnet.SiteID]float64{"A": 25, "B": 25},
	})
	rec, err := g.CreateChain(controller.Spec{
		ID: "c1", IngressSite: "A", EgressSite: "B",
		VNFs: []string{"nat"}, ForwardRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingress, egress, err := g.ConfigureChainEdges(rec, []edge.MatchRule{{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []simnet.SiteID{"A", "B"} {
		if err := g.WaitForDataPath(rec, s, 20*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	client, _ := bed.Net.Attach(simnet.Addr{Site: "A", Host: "client"}, 8192)
	server, _ := bed.Net.Attach(simnet.Addr{Site: "B", Host: "server"}, 8192)
	egress.RegisterHost(expServerIP, server.Addr())
	ingress.RegisterHost(expClientIP, client.Addr())

	rec2, err := g.RecomputeChain("c1", 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsA, _ := g.Local("A")
	fwdEdge, err := lsA.Forwarder("edge")
	if err != nil {
		t.Fatal(err)
	}
	st := labels.Stack{Chain: rec2.ChainLabel, Egress: rec2.EgressLabel}
	testutil.WaitUntil(t, 5*time.Second, "two-site rule installed", func() bool {
		return fwdEdge.RuleNextHopCount(st) >= 2
	})

	ce := ChainEndpoints{
		IngressEdge: ingress.Addr(), EgressEdge: egress.Addr(),
		Client: client, Server: server,
		ClientIP: expClientIP, ServerIP: expServerIP,
		Flows: 32, Window: 2, PortBase: 20000,
	}
	res := RunWindowedTraffic(ce, time.Second)
	t.Logf("completed %d round trips, RTT %s", res.Completed, res.RTT.Summary())

	var atA, atB uint64
	for _, inst := range nat.InstancesAt("A") {
		atA += inst.Stats().Processed
	}
	for _, inst := range nat.InstancesAt("B") {
		atB += inst.Stats().Processed
	}
	t.Logf("NAT processed: A=%d B=%d", atA, atB)
	if atB < 100 {
		fA, _ := lsA.Forwarder("nat")
		lsB, _ := g.Local("B")
		fB, _ := lsB.Forwarder("nat")
		fe, _ := lsB.Forwarder("edge")
		t.Logf("fwd-nat@A: %+v flows=%d", fA.Stats(), fA.FlowCount())
		t.Logf("fwd-nat@B: %+v flows=%d", fB.Stats(), fB.FlowCount())
		t.Logf("fwd-edge@B: %+v flows=%d", fe.Stats(), fe.FlowCount())
		t.Logf("fwd-edge@A: %+v flows=%d", fwdEdge.Stats(), fwdEdge.FlowCount())
		t.Logf("edge@A: %+v", lsA.Edge().Stats())
		t.Logf("edge@B: %+v", lsB.Edge().Stats())
		t.Fatalf("flows on route B stalled: NAT B processed only %d packets", atB)
	}
}
