package experiments

import (
	"fmt"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/edge"
	"switchboard/internal/model"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
	"switchboard/internal/te"
	"switchboard/internal/vnf"
	"switchboard/internal/workload"
)

// debugFig11 prints per-chain traffic detail while tuning the experiment.
var debugFig11 = false

// fig11Scheme describes one routing scheme for the end-to-end run.
type fig11Scheme struct {
	name      string
	router    func(nw *model.Network) (*model.Routing, error)
	admission bool
}

// Fig11 reproduces the end-to-end comparison of Section 7.2 on a 2-site
// WAN: two chains through a stateful, capacity-limited firewall deployed
// at both sites. Chain c1 enters at A and exits at B; chain c2 enters
// and exits at A. One firewall instance can carry only one chain's
// traffic:
//   - ANYCAST puts both chains on the instance at A (nearest), which
//     overloads it — queueing delay soars and ack-clocked throughput
//     collapses.
//   - COMPUTE-AWARE processes chains in demand order, parks c1 at A and
//     pushes c2 (an A→A chain!) across the WAN to B and back, paying two
//     extra WAN crossings.
//   - Switchboard's global optimization sends c1 (which must cross to B
//     anyway) through the instance at B and keeps c2 local at A.
//
// The experiment runs twice, with the paper's two inter-site RTTs
// (150 ms ≈ AWS, 80 ms ≈ private cloud).
func Fig11() (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "E2E: Switchboard vs distributed load balancing (2 sites)",
		Header: []string{"testbed", "scheme", "tput req/s", "mean RTT ms", "p99 RTT ms"},
	}
	for _, tb := range []struct {
		name string
		rtt  time.Duration
	}{
		{"aws-150ms", 150 * time.Millisecond},
		{"private-80ms", 80 * time.Millisecond},
	} {
		schemes := []fig11Scheme{
			{"SWITCHBOARD", nil, true}, // default SB-DP router
			{"ANYCAST", func(nw *model.Network) (*model.Routing, error) {
				return te.SolveAnycastUncapped(nw), nil
			}, false},
			{"COMPUTE-AWARE", func(nw *model.Network) (*model.Routing, error) {
				return te.SolveComputeAwareUncapped(nw), nil
			}, false},
		}
		for _, sc := range schemes {
			tput, mean, p99, err := fig11Run(tb.rtt, sc)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%s: %w", tb.name, sc.name, err)
			}
			t.AddRow(tb.name, sc.name, tput, mean, p99)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Switchboard highest throughput (up to +57% vs ANYCAST) and lowest latency (up to -49% vs COMPUTE-AWARE)")
	return t, nil
}

func fig11Run(rtt time.Duration, sc fig11Scheme) (tput, meanMs, p99Ms float64, err error) {
	bed, err := NewBed(21, rtt/2, "A", "B")
	if err != nil {
		return 0, 0, 0, err
	}
	defer bed.Close()
	g := bed.G
	g.Router = sc.router
	g.NoAdmissionControl = !sc.admission
	if _, err := g.RegisterSite("A", 10000); err != nil {
		return 0, 0, 0, err
	}
	if _, err := g.RegisterSite("B", 10000); err != nil {
		return 0, 0, 0, err
	}
	// Firewall: one instance per site, each able to carry one chain
	// (service time 600µs → ~1600 pps; each chain offers ~ the capacity
	// of one instance).
	bed.AddVNF(controller.VNFConfig{
		Name: "fw",
		Factory: func() vnf.Function {
			return Paced{Fn: vnf.NewFirewall([]vnf.Prefix{{IP: 0x0A000000, Bits: 8}}, nil), Gap: 600 * time.Microsecond}
		},
		LoadPerUnit:     1.0,
		LabelAware:      true,
		SharedInstances: true, // one firewall box per site, as in the paper
		Capacity:        map[simnet.SiteID]float64{"A": 25, "B": 25},
	})

	type chainRun struct {
		spec controller.Spec
		ce   ChainEndpoints
	}
	// Demand 12 → VNF load 24 ≈ one instance's capacity of 25; c1 is
	// created first (the schemes route chains in arrival order here).
	chains := []chainRun{
		{spec: controller.Spec{ID: "c1", IngressSite: "A", EgressSite: "B", VNFs: []string{"fw"}, ForwardRate: 12}},
		{spec: controller.Spec{ID: "c2", IngressSite: "A", EgressSite: "A", VNFs: []string{"fw"}, ForwardRate: 12}},
	}
	for i := range chains {
		cr := &chains[i]
		rec, err := g.CreateChain(cr.spec)
		if err != nil {
			return 0, 0, 0, err
		}
		inLS, _ := g.Local(cr.spec.IngressSite)
		egLS, _ := g.Local(cr.spec.EgressSite)
		ingress, egress := inLS.Edge(), egLS.Edge()
		clientIP := uint32(0x0A000001 + i)
		serverIP := uint32(0xC0A80001 + i)
		ingress.AddRule(edge.MatchRule{
			Dst:   packet.Prefix{IP: serverIP, Bits: 32},
			Chain: rec.ChainLabel,
		})
		ingress.AddEgressRoute(edge.EgressRoute{
			Dst: packet.Prefix{IP: serverIP, Bits: 32}, Egress: rec.EgressLabel,
		})
		client, err := bed.Net.Attach(simnet.Addr{Site: cr.spec.IngressSite, Host: fmt.Sprintf("client%d", i)}, 8192)
		if err != nil {
			return 0, 0, 0, err
		}
		server, err := bed.Net.Attach(simnet.Addr{Site: cr.spec.EgressSite, Host: fmt.Sprintf("server%d", i)}, 8192)
		if err != nil {
			return 0, 0, 0, err
		}
		egress.RegisterHost(serverIP, server.Addr())
		ingress.RegisterHost(clientIP, client.Addr())
		for _, s := range []simnet.SiteID{"A", "B"} {
			if err := g.WaitForDataPath(rec, s, 20*time.Second); err != nil {
				return 0, 0, 0, err
			}
		}
		cr.ce = ChainEndpoints{
			IngressEdge: ingress.Addr(), EgressEdge: egress.Addr(),
			Client: client, Server: server,
			ClientIP: clientIP, ServerIP: serverIP,
			Flows: 64, Window: 2,
		}
	}

	// Switchboard's advantage is holistic optimization across chains:
	// after both chains exist, run the joint LP re-optimization (the
	// baselines route greedily per chain and have nothing to re-run).
	if sc.admission {
		g.UseLP = true
		if err := g.OptimizeAll(); err != nil {
			return 0, 0, 0, err
		}
		// Let the updated routes propagate to every forwarder.
		time.Sleep(8 * rtt)
	}

	// Drive both chains concurrently.
	type out struct {
		idx int
		res *TrafficResult
	}
	results := make(chan out, len(chains))
	for i := range chains {
		go func(i int, ce ChainEndpoints) {
			results <- out{i, RunWindowedTraffic(ce, 2*time.Second)}
		}(i, chains[i].ce)
	}
	var completed uint64
	var rttSum time.Duration
	var rttN int
	var worstP99 time.Duration
	var dur time.Duration
	for range chains {
		o := <-results
		if debugFig11 {
			fmt.Printf("  [debug] chain %d: %d completed, RTT %s\n", o.idx, o.res.Completed, o.res.RTT.Summary())
		}
		completed += o.res.Completed
		if o.res.Duration > dur {
			dur = o.res.Duration
		}
		if n := o.res.RTT.Count(); n > 0 {
			rttSum += time.Duration(n) * o.res.RTT.Mean()
			rttN += n
		}
		if p := o.res.RTT.Percentile(99); p > worstP99 {
			worstP99 = p
		}
	}
	if dur <= 0 {
		return 0, 0, 0, fmt.Errorf("no traffic completed")
	}
	mean := time.Duration(0)
	if rttN > 0 {
		mean = rttSum / time.Duration(rttN)
	}
	return float64(completed) / dur.Seconds(), msOf(mean), msOf(worstP99), nil
}

// Table3 reproduces the shared-cache experiment (Section 7.2): five
// chains whose web traffic flows through either one shared cache
// instance or five private instances of 1/5 the size, under a Zipf(1.0)
// workload with 50 KB mean objects. Hit rate and mean download time are
// reported; the testbed geometry matches the paper (clients and caches
// co-located, origins 60 ms RTT away).
func Table3() (*Table, error) {
	const (
		chains      = 5
		objects     = 10000
		meanObjSize = 50 * 1024
		requests    = 40000 // per chain
		capacity    = 220 * int64(meanObjSize)
		localRTT    = 2 * time.Millisecond
		wanRTT      = 60 * time.Millisecond
		transferBw  = 100e6 / 8 // bytes/sec on the WAN path
	)
	downloadTime := func(hit bool, size int64) time.Duration {
		if hit {
			return localRTT
		}
		transfer := time.Duration(float64(size) / transferBw * float64(time.Second))
		return localRTT + wanRTT + transfer
	}
	objSize := func(id int) int64 {
		// Deterministic size in [10KB, 90KB] with 50KB mean.
		return int64(10*1024 + (id*2654435761)%(80*1024))
	}

	run := func(shared bool) (hitRate float64, meanDl time.Duration) {
		var caches []*vnf.Cache
		if shared {
			caches = []*vnf.Cache{vnf.NewCache(capacity)}
		} else {
			for i := 0; i < chains; i++ {
				caches = append(caches, vnf.NewCache(capacity/chains))
			}
		}
		var totalDl time.Duration
		var n int
		for c := 0; c < chains; c++ {
			z := workload.NewZipf(objects, 1.0, int64(100+c))
			cache := caches[0]
			if !shared {
				cache = caches[c]
			}
			for r := 0; r < requests; r++ {
				id := z.Next()
				key := fmt.Sprintf("obj-%d", id)
				hit := cache.Get(key)
				size := objSize(id)
				if !hit {
					cache.Put(key, size)
				}
				totalDl += downloadTime(hit, size)
				n++
			}
		}
		hits, misses := uint64(0), uint64(0)
		for _, c := range caches {
			h, m := c.Stats()
			hits += h
			misses += m
		}
		return float64(hits) / float64(hits+misses), totalDl / time.Duration(n)
	}

	sharedHit, sharedDl := run(true)
	siloHit, siloDl := run(false)

	t := &Table{
		ID:     "table3",
		Title:  "shared vs vertically siloed cache instances",
		Header: []string{"scheme", "hit rate %", "mean download ms"},
	}
	t.AddRow("shared cache inst.", sharedHit*100, msOf(sharedDl))
	t.AddRow("vertically siloed cache inst.", siloHit*100, msOf(siloDl))
	t.Notes = append(t.Notes,
		"paper: shared 57.45% / 56.49 ms vs siloed 44.25% / 70.02 ms — shape target: shared wins both metrics")
	return t, nil
}
