package experiments

import (
	"testing"
	"time"
)

// TestAutoscaleExperiment enforces the closed-loop acceptance bounds:
// the breach must resolve within a hard deadline, every lost packet must
// be counted (never silent), and the NAT bindings of long-lived flows
// must survive the live migration.
func TestAutoscaleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second closed-loop experiment")
	}
	tab, res, err := autoscaleRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("table has %d rows, want >= 3:\n%+v", len(tab.Rows), tab.Rows)
	}

	// Time-to-resolve is read from the alert timeline alone and must be
	// bounded: the loop has to close well before the experiment's polls
	// give up.
	if res.TimeToResolve <= 0 {
		t.Fatalf("time-to-resolve = %v, want > 0", res.TimeToResolve)
	}
	if res.TimeToResolve > 15*time.Second {
		t.Fatalf("time-to-resolve = %v, want <= 15s", res.TimeToResolve)
	}

	// At least one scale-out with a real migration behind it.
	if len(res.ScaleOuts) == 0 {
		t.Fatal("no successful scale-out decisions")
	}
	if res.ScaleOuts[0].Instances < 2 {
		t.Fatalf("first scale-out left %d instances, want >= 2", res.ScaleOuts[0].Instances)
	}
	if res.FlowsMoved == 0 {
		t.Fatal("scale-out migrated no flows — the elephants never moved")
	}

	// Loss across the migration is zero-or-counted: whatever the gates
	// could not buffer is in the decision log, and it must be a handful
	// of packets, not a drained queue.
	if res.PacketsLost > 64 {
		t.Fatalf("migration lost %d packets, want <= 64", res.PacketsLost)
	}

	// NAT binding continuity: every elephant the server saw must have
	// kept one stable public port across the handoff.
	if res.ElephantsSeen < 8 {
		t.Fatalf("server saw %d elephant flows, want 8", res.ElephantsSeen)
	}
	if res.ElephantsStable != res.ElephantsSeen {
		t.Fatalf("%d/%d elephant flows kept a stable public port", res.ElephantsStable, res.ElephantsSeen)
	}

	// The control plane traced the action: a gs.scale_out span with the
	// site-local migration span beneath the operation.
	scaleSpans := res.Rec.SpansNamed("gs.scale_out")
	if len(scaleSpans) == 0 {
		t.Fatal("no gs.scale_out span recorded")
	}
	if len(res.Rec.SpansNamed("ls.B.migrate_flows")) == 0 {
		t.Fatal("no ls.B.migrate_flows span recorded")
	}

	// The autoscaler's own metrics must agree with the decision log.
	snap := res.Reg.Snapshot()
	if got := snap.Counters["autoscale.migrations"]; got < 1 || got > uint64(len(res.ScaleOuts)) {
		t.Fatalf("autoscale.migrations = %d, want 1..%d", got, len(res.ScaleOuts))
	}
	if got := snap.Counters["migrate.packets_lost"]; got != res.PacketsLost {
		t.Fatalf("migrate.packets_lost = %d, want %d", got, res.PacketsLost)
	}
	if h, ok := snap.Histograms["autoscale.time_to_resolve_ms"]; !ok || h.Count == 0 {
		t.Fatalf("autoscale.time_to_resolve_ms missing or empty (ok=%v)", ok)
	}
}
