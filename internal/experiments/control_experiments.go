package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/edge"
	"switchboard/internal/labels"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
	"switchboard/internal/testutil"
	"switchboard/internal/vnf"
)

const (
	expClientIP = 0x0A000001
	expServerIP = 0xC0A80001
)

func labelsOf(rec *controller.RouteRecord) labels.Stack {
	return labels.Stack{Chain: rec.ChainLabel, Egress: rec.EgressLabel}
}

// Fig10 reproduces the dynamic chain-route creation experiment (Section
// 7.1): a chain with a single capacity-limited NAT instance at site A is
// overloaded; Global Switchboard adds a route via site B; the table
// reports the route-update latency and the throughput before and after
// (the paper: 595 ms update, throughput roughly doubles).
func Fig10() (*Table, error) {
	bed, err := NewBed(10, 5*time.Millisecond, "A", "B", "GSB")
	if err != nil {
		return nil, err
	}
	defer bed.Close()
	g := bed.G
	if _, err := g.RegisterSite("A", 10000); err != nil {
		return nil, err
	}
	if _, err := g.RegisterSite("B", 10000); err != nil {
		return nil, err
	}
	// NAT instances process ~700 requests/sec each (the request and the
	// reply both cross the instance, so per-flow round trips cost two
	// service times). Every instance gets its own public IP, as distinct
	// NAT boxes do — sharing one would collide their translated flows.
	const gap = 700 * time.Microsecond
	var natSeq atomic.Uint32
	nat := bed.AddVNF(controller.VNFConfig{
		Name: "nat",
		Factory: func() vnf.Function {
			return Paced{Fn: vnf.NewNAT(0x05050500 + natSeq.Add(1)), Gap: gap}
		},
		LoadPerUnit: 1.0,
		LabelAware:  true,
		Capacity:    map[simnet.SiteID]float64{"A": 25, "B": 25},
	})

	tl := controller.NewTimeline(256)
	g.SetTimeline(tl)

	// Initial chain: fits at site A only (load 2×10 = 20 ≤ 25).
	rec, err := g.CreateChain(controller.Spec{
		ID: "c1", IngressSite: "A", EgressSite: "B",
		VNFs: []string{"nat"}, ForwardRate: 10,
	})
	if err != nil {
		return nil, err
	}
	ingress, egress, err := g.ConfigureChainEdges(rec, []edge.MatchRule{{}})
	if err != nil {
		return nil, err
	}
	for _, s := range []simnet.SiteID{"A", "B"} {
		if err := g.WaitForDataPath(rec, s, 20*time.Second); err != nil {
			return nil, err
		}
	}
	client, err := bed.Net.Attach(simnet.Addr{Site: "A", Host: "client"}, 8192)
	if err != nil {
		return nil, err
	}
	server, err := bed.Net.Attach(simnet.Addr{Site: "B", Host: "server"}, 8192)
	if err != nil {
		return nil, err
	}
	egress.RegisterHost(expServerIP, server.Addr())
	ingress.RegisterHost(expClientIP, client.Addr())

	ce := ChainEndpoints{
		IngressEdge: ingress.Addr(), EgressEdge: egress.Addr(),
		Client: client, Server: server,
		ClientIP: expClientIP, ServerIP: expServerIP,
		Flows: 48, Window: 2,
	}
	before := RunWindowedTraffic(ce, 1500*time.Millisecond)

	// Trigger the new route: demand doubles, requiring both sites.
	tl.Drain()
	start := time.Now()
	rec2, err := g.RecomputeChain("c1", 20, 0)
	if err != nil {
		return nil, err
	}
	for _, s := range []simnet.SiteID{"A", "B"} {
		if err := g.WaitForDataPath(rec2, s, 20*time.Second); err != nil {
			return nil, err
		}
	}
	// Wait for the ingress forwarder's rule to actually reflect the new
	// two-site route (the old single-site rule also satisfies basic
	// readiness) so new flows spread across both routes.
	lsA, _ := g.Local("A")
	fwdEdge, err := lsA.Forwarder("edge")
	if err != nil {
		return nil, err
	}
	st := labelsOf(rec2)
	if !testutil.Poll(5*time.Second, func() bool { return fwdEdge.RuleNextHopCount(st) >= 2 }) {
		return nil, fmt.Errorf("fig10: two-site ingress rule never installed")
	}
	updateLatency := time.Since(start)

	// Fresh connections (new ports) spread across both routes; flows
	// from the first run would have stayed pinned to the old route.
	ce.Flows = 96
	ce.PortBase = 20000
	after := RunWindowedTraffic(ce, 1500*time.Millisecond)

	t := &Table{
		ID:     "fig10",
		Title:  "dynamic chain route creation",
		Header: []string{"metric", "value"},
	}
	t.AddRow("route update latency (ms)", msOf(updateLatency))
	t.AddRow("throughput before (req/s)", before.Throughput())
	t.AddRow("throughput after (req/s)", after.Throughput())
	ratio := 0.0
	if before.Throughput() > 0 {
		ratio = after.Throughput() / before.Throughput()
	}
	t.AddRow("throughput ratio", ratio)
	t.AddRow("RTT before p50 (ms)", msOf(before.RTT.Percentile(50)))
	t.AddRow("RTT after p50 (ms)", msOf(after.RTT.Percentile(50)))
	sites := rec2.StageSites(1)
	t.AddRow("stage-1 sites after update", fmt.Sprintf("%v", sites))
	for _, s := range []simnet.SiteID{"A", "B"} {
		var processed uint64
		for _, inst := range nat.InstancesAt(s) {
			processed += inst.Stats().Processed
		}
		t.AddRow(fmt.Sprintf("NAT packets processed at %s", s), processed)
	}
	t.Notes = append(t.Notes,
		"paper shape: update completes in well under a second; adding the second route ~doubles throughput")
	return t, nil
}

// Table2 reproduces the edge-site addition experiment (Section 7.1): the
// latency of each control-plane step when a chain is extended to a new
// edge site, plus the end-to-end readiness time (paper total: <600 ms).
func Table2() (*Table, error) {
	bed, err := NewBed(11, 25*time.Millisecond, "GSB", "A", "B", "C", "E")
	if err != nil {
		return nil, err
	}
	defer bed.Close()
	g := bed.G
	for _, s := range []simnet.SiteID{"A", "B", "C", "E"} {
		if _, err := g.RegisterSite(s, 1000); err != nil {
			return nil, err
		}
	}
	bed.AddVNF(controller.VNFConfig{
		Name:        "fw",
		Factory:     func() vnf.Function { return vnf.PassThrough{} },
		LoadPerUnit: 1.0,
		LabelAware:  true,
		Capacity:    map[simnet.SiteID]float64{"B": 500},
	})
	rec, err := g.CreateChain(controller.Spec{
		ID: "c1", IngressSite: "A", EgressSite: "C",
		VNFs: []string{"fw"}, ForwardRate: 5,
	})
	if err != nil {
		return nil, err
	}
	_, egress, err := g.ConfigureChainEdges(rec, []edge.MatchRule{{}})
	if err != nil {
		return nil, err
	}
	for _, s := range []simnet.SiteID{"A", "B", "C"} {
		if err := g.WaitForDataPath(rec, s, 20*time.Second); err != nil {
			return nil, err
		}
	}

	// Attach a timeline to the new site's Local Switchboard to observe
	// each configuration step.
	tl := controller.NewTimeline(256)
	lsE, _ := g.Local("E")
	lsE.SetTimeline(tl)
	g.SetTimeline(tl)

	start := time.Now()
	rec2, err := g.AddEdgeSite("c1", "E")
	if err != nil {
		return nil, err
	}
	if err := g.WaitForDataPath(rec2, "E", 20*time.Second); err != nil {
		return nil, err
	}
	ready := time.Since(start)

	// First packet through the new edge.
	edgeE := lsE.Edge()
	edgeE.AddRule(edge.MatchRule{Chain: rec2.ChainLabel})
	edgeE.AddEgressRoute(edge.EgressRoute{Egress: rec2.EgressLabel})
	client, err := bed.Net.Attach(simnet.Addr{Site: "E", Host: "mobile"}, 1024)
	if err != nil {
		return nil, err
	}
	server, err := bed.Net.Attach(simnet.Addr{Site: "C", Host: "server"}, 1024)
	if err != nil {
		return nil, err
	}
	egress.RegisterHost(expServerIP, server.Addr())
	firstPacketStart := time.Now()
	p := &packet.Packet{
		Key: packet.FlowKey{SrcIP: expClientIP, DstIP: expServerIP, SrcPort: 12345, DstPort: 80, Proto: 6},
	}
	if err := client.Send(edgeE.Addr(), p, 64); err != nil {
		return nil, err
	}
	var firstPacket time.Duration
	select {
	case <-server.Inbox():
		firstPacket = time.Since(firstPacketStart)
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("table2: first packet via new edge never arrived")
	}

	t := &Table{
		ID:     "table2",
		Title:  "edge-site addition latency",
		Header: []string{"operation", "latency ms"},
	}
	// Per-step events from the timeline, relative to the start.
	for _, ev := range tl.Drain() {
		if ev.At.After(start) {
			t.AddRow(ev.Name, msOf(ev.At.Sub(start)))
		}
	}
	t.AddRow("TOTAL: new edge data path ready", msOf(ready))
	t.AddRow("first packet via new edge (one way)", msOf(firstPacket))
	t.Notes = append(t.Notes,
		"paper shape: individual steps of tens to hundreds of ms; total below ~600 ms on WAN RTTs")
	return t, nil
}
