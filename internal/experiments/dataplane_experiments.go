package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/flowtable"
	"switchboard/internal/forwarder"
	"switchboard/internal/labels"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
)

var benchStack = labels.Stack{Chain: 77, Egress: 9}

func benchFlow(core, i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: uint32(core)<<24 | uint32(i), DstIP: 0xC0A80001,
		SrcPort: uint16(i % 60000), DstPort: 80, Proto: 6,
	}
}

// buildForwarder assembles a single-chain forwarder in the given mode.
func buildForwarder(name string, mode forwarder.Mode) (f *forwarder.Forwarder, prev flowtable.Hop) {
	f = forwarder.New(name, mode, 16)
	vnf := f.AddHop(forwarder.NextHop{Kind: forwarder.KindVNF,
		Addr: simnet.Addr{Site: "A", Host: name + "-vnf"}, LabelAware: true})
	next := f.AddHop(forwarder.NextHop{Kind: forwarder.KindForwarder,
		Addr: simnet.Addr{Site: "B", Host: name + "-peer"}})
	prev = f.AddHop(forwarder.NextHop{Kind: forwarder.KindEdge,
		Addr: simnet.Addr{Site: "A", Host: name + "-edge"}})
	f.InstallRule(benchStack, forwarder.RuleSpec{
		LocalVNF: []forwarder.WeightedHop{{Hop: vnf, Weight: 1}},
		Next:     []forwarder.WeightedHop{{Hop: next, Weight: 1}},
		Prev:     []forwarder.WeightedHop{{Hop: prev, Weight: 1}},
	})
	f.SetBridgeTarget(next)
	return f, prev
}

// measureMpps pushes packets through Process for the given duration and
// returns millions of packets per second.
func measureMpps(f *forwarder.Forwarder, prev flowtable.Hop, flows int, dur time.Duration) float64 {
	pkts := make([]*packet.Packet, flows)
	for i := range pkts {
		pkts[i] = &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(0, i)}
	}
	// Warm up: populate flow table.
	for _, p := range pkts {
		_, _ = f.Process(p, prev)
		p.Labeled = true
	}
	n := 0
	start := time.Now()
	for time.Since(start) < dur {
		for k := 0; k < 256; k++ {
			p := pkts[n%flows]
			_, _ = f.Process(p, prev)
			p.Labeled = true
			n++
		}
	}
	sec := time.Since(start).Seconds()
	return float64(n) / sec / 1e6
}

// Fig7 reproduces the OVS overhead ablation: per-packet throughput of a
// plain bridge, +overlay labels (weighted LB per packet), and +flow
// affinity rules, for 1-50 concurrent flows. The paper measured labels
// at 19-29% overhead and affinity at a further 33-44% on OVS.
func Fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "forwarder overhead: bridge vs +labels vs +affinity (Mpps, 1 core)",
		Header: []string{"flows", "bridge", "labels", "affinity", "labels ovh %", "affinity ovh %"},
	}
	const dur = 300 * time.Millisecond
	for _, flows := range []int{1, 10, 50} {
		fb, pb := buildForwarder("bridge", forwarder.ModeBridge)
		fl, pl := buildForwarder("labels", forwarder.ModeLabels)
		fa, pa := buildForwarder("affinity", forwarder.ModeAffinity)
		bridge := measureMpps(fb, pb, flows, dur)
		lbl := measureMpps(fl, pl, flows, dur)
		aff := measureMpps(fa, pa, flows, dur)
		lblOvh := (bridge/lbl - 1) * 100
		affOvh := (lbl/aff - 1) * 100
		t.AddRow(flows, bridge, lbl, aff, lblOvh, affOvh)
	}
	t.Notes = append(t.Notes,
		"paper (OVS): labels +19-29%, affinity +33-44% over labels; shape target is ordered overhead, not absolute %")
	return t, nil
}

// Fig8 reproduces the forwarder scale-out: aggregate throughput for 1..N
// cores each owning its forwarder instance, at small and large flow
// tables (512K flows per instance, the paper's per-core figure). The
// paper: ~7 Mpps on one core, +3-4 Mpps per extra core, >20 Mpps with 6
// cores and 3M flows.
func Fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "forwarder scale-out (aggregate Mpps)",
		Header: []string{"cores", "flows/core", "total flows", "Mpps"},
	}
	maxCores := runtime.GOMAXPROCS(0)
	coreCounts := []int{1, 2, 4, 6}
	for _, cores := range coreCounts {
		if cores > maxCores {
			t.Notes = append(t.Notes,
				fmt.Sprintf("cores=%d skipped: only %d hardware threads available", cores, maxCores))
			continue
		}
		for _, flowsPer := range []int{8192, 524288} {
			mpps := scaleOutMpps(cores, flowsPer, 400*time.Millisecond)
			t.AddRow(cores, flowsPer, cores*flowsPer, mpps)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: near-linear core scaling; throughput drops as the flow table outgrows CPU caches")
	return t, nil
}

func scaleOutMpps(cores, flowsPer int, dur time.Duration) float64 {
	fwds := make([]*forwarder.Forwarder, cores)
	prevs := make([]flowtable.Hop, cores)
	for c := 0; c < cores; c++ {
		fwds[c], prevs[c] = buildForwarder(fmt.Sprintf("f%d", c), forwarder.ModeAffinity)
		for i := 0; i < flowsPer; i++ {
			p := &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(c, i)}
			_, _ = fwds[c].Process(p, prevs[c])
		}
	}
	var total atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			const window = 2048
			pkts := make([]*packet.Packet, window)
			stride := flowsPer/window + 1
			for i := range pkts {
				pkts[i] = &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(c, (i*stride)%flowsPer)}
			}
			n := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					total.Add(n)
					return
				default:
				}
				for k := 0; k < window; k++ {
					p := pkts[k]
					_, _ = fwds[c].Process(p, prevs[c])
					p.Labeled = true
					n++
				}
			}
		}(c)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	sec := time.Since(start).Seconds()
	return float64(total.Load()) / sec / 1e6
}
