package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/flowtable"
	"switchboard/internal/forwarder"
	"switchboard/internal/labels"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
	"switchboard/internal/workload"
)

var benchStack = labels.Stack{Chain: 77, Egress: 9}

func benchFlow(core, i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: uint32(core)<<24 | uint32(i), DstIP: 0xC0A80001,
		SrcPort: uint16(i % 60000), DstPort: 80, Proto: 6,
	}
}

// buildForwarder assembles a single-chain forwarder in the given mode.
func buildForwarder(name string, mode forwarder.Mode) (f *forwarder.Forwarder, prev flowtable.Hop) {
	f = forwarder.New(name, mode, 16)
	vnf := f.AddHop(forwarder.NextHop{Kind: forwarder.KindVNF,
		Addr: simnet.Addr{Site: "A", Host: name + "-vnf"}, LabelAware: true})
	next := f.AddHop(forwarder.NextHop{Kind: forwarder.KindForwarder,
		Addr: simnet.Addr{Site: "B", Host: name + "-peer"}})
	prev = f.AddHop(forwarder.NextHop{Kind: forwarder.KindEdge,
		Addr: simnet.Addr{Site: "A", Host: name + "-edge"}})
	f.InstallRule(benchStack, forwarder.RuleSpec{
		LocalVNF: []forwarder.WeightedHop{{Hop: vnf, Weight: 1}},
		Next:     []forwarder.WeightedHop{{Hop: next, Weight: 1}},
		Prev:     []forwarder.WeightedHop{{Hop: prev, Weight: 1}},
	})
	f.SetBridgeTarget(next)
	return f, prev
}

// measureMpps pushes packets through Process for the given duration and
// returns millions of packets per second.
func measureMpps(f *forwarder.Forwarder, prev flowtable.Hop, flows int, dur time.Duration) float64 {
	pkts := make([]*packet.Packet, flows)
	for i := range pkts {
		pkts[i] = &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(0, i)}
	}
	// Warm up: populate flow table.
	for _, p := range pkts {
		_, _ = f.Process(p, prev)
		p.Labeled = true
	}
	n := 0
	start := time.Now()
	for time.Since(start) < dur {
		for k := 0; k < 256; k++ {
			p := pkts[n%flows]
			_, _ = f.Process(p, prev)
			p.Labeled = true
			n++
		}
	}
	sec := time.Since(start).Seconds()
	return float64(n) / sec / 1e6
}

// Fig7 reproduces the OVS overhead ablation: per-packet throughput of a
// plain bridge, +overlay labels (weighted LB per packet), and +flow
// affinity rules, for 1-50 concurrent flows. The paper measured labels
// at 19-29% overhead and affinity at a further 33-44% on OVS.
func Fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "forwarder overhead: bridge vs +labels vs +affinity (Mpps, 1 core)",
		Header: []string{"flows", "bridge", "labels", "affinity", "labels ovh %", "affinity ovh %"},
	}
	const dur = 300 * time.Millisecond
	for _, flows := range []int{1, 10, 50} {
		fb, pb := buildForwarder("bridge", forwarder.ModeBridge)
		fl, pl := buildForwarder("labels", forwarder.ModeLabels)
		fa, pa := buildForwarder("affinity", forwarder.ModeAffinity)
		bridge := measureMpps(fb, pb, flows, dur)
		lbl := measureMpps(fl, pl, flows, dur)
		aff := measureMpps(fa, pa, flows, dur)
		lblOvh := (bridge/lbl - 1) * 100
		affOvh := (lbl/aff - 1) * 100
		t.AddRow(flows, bridge, lbl, aff, lblOvh, affOvh)
	}
	t.Notes = append(t.Notes,
		"paper (OVS): labels +19-29%, affinity +33-44% over labels; shape target is ordered overhead, not absolute %")
	return t, nil
}

// Fig8 reproduces the forwarder scale-out: aggregate throughput for 1..N
// cores each owning its forwarder instance, at small and large flow
// tables (512K flows per instance, the paper's per-core figure). The
// paper: ~7 Mpps on one core, +3-4 Mpps per extra core, >20 Mpps with 6
// cores and 3M flows.
func Fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "forwarder scale-out (aggregate Mpps)",
		Header: []string{"cores", "flows/core", "total flows", "Mpps"},
	}
	maxCores := runtime.GOMAXPROCS(0)
	coreCounts := []int{1, 2, 4, 6}
	for _, cores := range coreCounts {
		if cores > maxCores {
			t.Notes = append(t.Notes,
				fmt.Sprintf("cores=%d skipped: only %d hardware threads available", cores, maxCores))
			continue
		}
		for _, flowsPer := range []int{8192, 524288} {
			mpps := scaleOutMpps(cores, flowsPer, 400*time.Millisecond)
			t.AddRow(cores, flowsPer, cores*flowsPer, mpps)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: near-linear core scaling; throughput drops as the flow table outgrows CPU caches")
	return t, nil
}

// BatchSweep measures the batched data path end to end: a traffic
// source, one forwarder core (Runner), and a sink over simnet, sweeping
// the burst size. Batch 1 is the classic one-message-per-packet path;
// larger batches amortize inbox wakeups, rule/hop locking, flow-table
// shard locking, and counter updates across the burst — the software
// analog of the DPDK burst I/O behind the paper's Figure 6/7 numbers.
// The target is ≥2x packets/sec per core at batch 32 vs batch 1 in
// Labels mode.
func BatchSweep() (*Table, error) {
	t := &Table{
		ID:     "dataplane",
		Title:  "batched data path: packets/sec per forwarder core vs batch size",
		Header: []string{"mode", "batch", "pps/core", "speedup vs batch=1"},
	}
	const dur = 400 * time.Millisecond
	modes := []struct {
		name string
		mode forwarder.Mode
	}{
		{"labels", forwarder.ModeLabels},
		{"affinity", forwarder.ModeAffinity},
	}
	for _, mc := range modes {
		var base float64
		for _, bs := range []int{1, 8, 32, 64} {
			pps := batchPipelinePps(mc.mode, bs, dur)
			if bs == 1 {
				base = pps
			}
			speedup := 0.0
			if base > 0 {
				speedup = pps / base
			}
			t.AddRow(mc.name, bs, pps, speedup)
		}
	}
	t.Notes = append(t.Notes,
		"source -> forwarder(Runner) -> sink over simnet; one runner goroutine = one core",
		"paper analog: DPDK burst I/O + zero per-packet allocation (Fig 6/7); target >=2x at batch 32 vs 1 in labels mode")
	return t, nil
}

// batchPipelinePps runs one source->forwarder->sink pipeline at the
// given burst size and returns delivered packets/sec at the sink.
func batchPipelinePps(mode forwarder.Mode, batch int, dur time.Duration) float64 {
	net := simnet.New(7)
	defer net.Close()
	// All endpoints share a site: delivery is immediate and backpressure
	// comes from inbox capacity, so the measurement isolates per-packet
	// CPU costs rather than emulated WAN latency.
	queue := 64 * batch
	if queue < 1024 {
		queue = 1024
	}
	fwdEP, err := net.Attach(simnet.Addr{Site: "A", Host: "fwd"}, queue)
	if err != nil {
		return 0
	}
	sinkEP, err := net.Attach(simnet.Addr{Site: "A", Host: "sink"}, queue)
	if err != nil {
		return 0
	}
	srcEP, err := net.Attach(simnet.Addr{Site: "A", Host: "src"}, 64)
	if err != nil {
		return 0
	}

	f := forwarder.New("f", mode, 16)
	next := f.AddHop(forwarder.NextHop{Kind: forwarder.KindForwarder, Addr: sinkEP.Addr()})
	prev := f.AddHop(forwarder.NextHop{Kind: forwarder.KindEdge, Addr: srcEP.Addr()})
	f.InstallRule(benchStack, forwarder.RuleSpec{
		Next: []forwarder.WeightedHop{{Hop: next, Weight: 1}},
		Prev: []forwarder.WeightedHop{{Hop: prev, Weight: 1}},
	})
	f.SetBridgeTarget(next)

	pool := packet.NewPool()
	runner := &forwarder.Runner{F: f, EP: fwdEP, BatchSize: batch, Pool: pool}
	src := workload.NewSource(srcEP, workload.SourceConfig{
		Dest: fwdEP.Addr(), Labels: benchStack, Flows: 64, BatchSize: batch, Pool: pool,
	})
	sink := workload.NewSink(sinkEP, pool)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); runner.Run(ctx) }()
	go func() { defer wg.Done(); sink.Run(ctx) }()
	go func() { defer wg.Done(); src.Run(ctx) }()

	start := time.Now()
	time.Sleep(dur)
	delivered := sink.Count()
	sec := time.Since(start).Seconds()
	cancel()
	// All three goroutines exit on ctx alone (the source never blocks and
	// the receive loops honour the context), so the network can be closed
	// after they are done — closing first would race their sends.
	wg.Wait()
	if sec <= 0 {
		return 0
	}
	return float64(delivered) / sec
}

func scaleOutMpps(cores, flowsPer int, dur time.Duration) float64 {
	fwds := make([]*forwarder.Forwarder, cores)
	prevs := make([]flowtable.Hop, cores)
	for c := 0; c < cores; c++ {
		fwds[c], prevs[c] = buildForwarder(fmt.Sprintf("f%d", c), forwarder.ModeAffinity)
		for i := 0; i < flowsPer; i++ {
			p := &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(c, i)}
			_, _ = fwds[c].Process(p, prevs[c])
		}
	}
	var total atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			const window = 2048
			pkts := make([]*packet.Packet, window)
			stride := flowsPer/window + 1
			for i := range pkts {
				pkts[i] = &packet.Packet{Labels: benchStack, Labeled: true, Key: benchFlow(c, (i*stride)%flowsPer)}
			}
			n := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					total.Add(n)
					return
				default:
				}
				for k := 0; k < window; k++ {
					p := pkts[k]
					_, _ = fwds[c].Process(p, prevs[c])
					p.Labeled = true
					n++
				}
			}
		}(c)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	sec := time.Since(start).Seconds()
	return float64(total.Load()) / sec / 1e6
}
