package experiments

import (
	"fmt"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/controller"
	"switchboard/internal/edge"
	"switchboard/internal/simnet"
	"switchboard/internal/testutil"
	"switchboard/internal/vnf"
)

// stage1Host returns the site carrying the chain's first VNF stage.
func stage1Host(rec *controller.RouteRecord) simnet.SiteID {
	for s, w := range rec.StageSites(1) {
		if w > 0 {
			return s
		}
	}
	return ""
}

// chainReady reports whether the chain's current route is installed at
// the ingress site and at whichever site hosts its stage.
func chainReady(g *controller.GlobalSwitchboard, id controller.ChainID, ingress simnet.SiteID) bool {
	cur, ok := g.Record(id)
	if !ok {
		return false
	}
	host := stage1Host(cur)
	if host == "" {
		return false
	}
	for _, s := range []simnet.SiteID{ingress, host} {
		if g.WaitForDataPath(cur, s, 50*time.Millisecond) != nil {
			return false
		}
	}
	return true
}

// Chaos is the robustness soak: a chain across lossy WAN paths survives
// 30% loss on every inter-site link, a controller partition, and a full
// site crash. Chain creation must converge through bus retransmission,
// the heartbeat failure detector alone must detect the partition and the
// crash (no manual failure call), and after every fault heals the data
// path must reconverge with route state intact — the partitioned site
// catches up via the bus's anti-entropy pass.
func Chaos() (*Table, error) {
	const loss = 0.3
	sites := []simnet.SiteID{"GSB", "A", "B", "C"}
	paths := make(map[[2]simnet.SiteID]simnet.PathProfile)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			paths[[2]simnet.SiteID{a, b}] = simnet.PathProfile{
				Delay: 2 * time.Millisecond, Loss: loss, Jitter: 500 * time.Microsecond,
			}
		}
	}
	bed, err := NewBedWithPaths(77, paths, sites...)
	if err != nil {
		return nil, err
	}
	defer bed.Close()
	g := bed.G

	// A deliberately small retry budget so a partition exhausts it
	// (visible as Drops) and recovery must come from anti-entropy.
	bed.Bus.SetReliability(bus.Reliability{
		RetryBase:      5 * time.Millisecond,
		RetryMax:       40 * time.Millisecond,
		MaxAttempts:    12,
		ResyncInterval: 25 * time.Millisecond,
	})

	for _, s := range []simnet.SiteID{"A", "B", "C"} {
		if _, err := g.RegisterSite(s, 1000); err != nil {
			return nil, err
		}
	}
	fw := bed.AddVNF(controller.VNFConfig{
		Name:        "fw",
		Factory:     func() vnf.Function { return vnf.PassThrough{} },
		LoadPerUnit: 1.0,
		LabelAware:  true,
		Capacity:    map[simnet.SiteID]float64{"B": 500, "C": 500},
	})

	for _, s := range sites {
		ls, ok := g.Local(s)
		if !ok {
			return nil, fmt.Errorf("chaos: no Local Switchboard at %s", s)
		}
		ls.StartHeartbeats(10 * time.Millisecond)
	}
	stopDetector, err := g.StartFailureDetector(controller.DetectorConfig{
		Interval:     25 * time.Millisecond,
		SuspectAfter: 200 * time.Millisecond,
		Debounce:     2,
	})
	if err != nil {
		return nil, err
	}
	defer stopDetector()

	// Phase 1: chain creation under 30% loss on every path. The reliable
	// bus must retransmit the control plane to convergence.
	createStart := time.Now()
	rec, err := g.CreateChain(controller.Spec{
		ID: "c1", IngressSite: "A", EgressSite: "A",
		VNFs: []string{"fw"}, ForwardRate: 5,
	})
	if err != nil {
		return nil, err
	}
	ingress, egress, err := g.ConfigureChainEdges(rec, []edge.MatchRule{{}})
	if err != nil {
		return nil, err
	}
	host := stage1Host(rec)
	if host == "" {
		return nil, fmt.Errorf("chaos: no stage-1 site in %+v", rec.Splits)
	}
	for _, s := range []simnet.SiteID{"A", host} {
		if err := g.WaitForDataPath(rec, s, 30*time.Second); err != nil {
			return nil, fmt.Errorf("chaos: creation under loss: %w", err)
		}
	}
	createReady := time.Since(createStart)
	if s := bed.Bus.Stats(); s.Retries == 0 {
		return nil, fmt.Errorf("chaos: converged with zero retransmissions under %.0f%% loss: %+v", loss*100, s)
	}

	client, err := bed.Net.Attach(simnet.Addr{Site: "A", Host: "client"}, 8192)
	if err != nil {
		return nil, err
	}
	server, err := bed.Net.Attach(simnet.Addr{Site: "A", Host: "server"}, 8192)
	if err != nil {
		return nil, err
	}
	egress.RegisterHost(expServerIP, server.Addr())
	ingress.RegisterHost(expClientIP, client.Addr())
	ce := ChainEndpoints{
		IngressEdge: ingress.Addr(), EgressEdge: egress.Addr(),
		Client: client, Server: server,
		ClientIP: expClientIP, ServerIP: expServerIP,
		Flows: 48, Window: 2,
	}
	before := RunWindowedTraffic(ce, 700*time.Millisecond)

	// Phase 2: partition the stage host away from the controller. The
	// detector must notice the silence on its own and reroute; the retry
	// budget toward the dead site must run dry.
	partitionStart := time.Now()
	bed.Net.Partition("GSB", host)
	if !testutil.Poll(15*time.Second, func() bool { return g.SiteFailed(host) }) {
		return nil, fmt.Errorf("chaos: detector never declared partitioned site %s failed", host)
	}
	partitionDetect := time.Since(partitionStart)
	if !testutil.Poll(15*time.Second, func() bool {
		cur, ok := g.Record("c1")
		return ok && cur.StageSites(1)[host] == 0 && stage1Host(cur) != ""
	}) {
		return nil, fmt.Errorf("chaos: chain never rerouted off partitioned site %s", host)
	}
	if !testutil.Poll(15*time.Second, func() bool { return chainReady(g, "c1", "A") }) {
		return nil, fmt.Errorf("chaos: data path after partition reroute never ready")
	}
	if !testutil.Poll(15*time.Second, func() bool { return bed.Bus.Stats().Drops > 0 }) {
		return nil, fmt.Errorf("chaos: retry budget toward %s never exhausted: %+v", host, bed.Bus.Stats())
	}

	healStart := time.Now()
	bed.Net.Heal("GSB", host)
	if !testutil.Poll(15*time.Second, func() bool { return !g.SiteFailed(host) }) {
		return nil, fmt.Errorf("chaos: %s never re-admitted after heal", host)
	}
	healReadmit := time.Since(healStart)
	if !testutil.Poll(15*time.Second, func() bool { return fw.Capacity()[host] == 500 }) {
		return nil, fmt.Errorf("chaos: fw capacity at %s not restored after heal", host)
	}
	// Route state must not be lost: the healed site converges to the
	// current route via anti-entropy, and the whole data path re-settles.
	if !testutil.Poll(15*time.Second, func() bool { return chainReady(g, "c1", "A") }) {
		return nil, fmt.Errorf("chaos: data path never re-settled after partition heal")
	}
	if s := bed.Bus.Stats(); s.Resyncs == 0 {
		return nil, fmt.Errorf("chaos: healed with zero anti-entropy resyncs: %+v", s)
	}

	// Phase 3: crash whichever site now hosts the stage — a blackout
	// kills its heartbeats and everything else.
	cur, _ := g.Record("c1")
	crashed := stage1Host(cur)
	if crashed == "" {
		return nil, fmt.Errorf("chaos: no stage-1 site before crash in %+v", cur.Splits)
	}
	crashStart := time.Now()
	bed.Net.BlackoutSite(crashed)
	if !testutil.Poll(15*time.Second, func() bool { return g.SiteFailed(crashed) }) {
		return nil, fmt.Errorf("chaos: detector never declared crashed site %s failed", crashed)
	}
	crashDetect := time.Since(crashStart)
	if !testutil.Poll(15*time.Second, func() bool {
		cur, ok := g.Record("c1")
		return ok && cur.StageSites(1)[crashed] == 0 && stage1Host(cur) != ""
	}) {
		return nil, fmt.Errorf("chaos: chain never rerouted off crashed site %s", crashed)
	}
	if !testutil.Poll(15*time.Second, func() bool { return chainReady(g, "c1", "A") }) {
		return nil, fmt.Errorf("chaos: data path never reconverged after crash of %s", crashed)
	}

	bed.Net.RestoreSite(crashed)
	if !testutil.Poll(15*time.Second, func() bool { return !g.SiteFailed(crashed) }) {
		return nil, fmt.Errorf("chaos: %s never re-admitted after restore", crashed)
	}
	if !testutil.Poll(15*time.Second, func() bool { return chainReady(g, "c1", "A") }) {
		return nil, fmt.Errorf("chaos: data path never settled after restore of %s", crashed)
	}

	// Fresh connections after all the churn (old flows stay pinned to
	// routes that may be gone).
	ce.Flows = 48
	ce.PortBase = 30000
	after := RunWindowedTraffic(ce, 700*time.Millisecond)
	if after.Completed == 0 {
		return nil, fmt.Errorf("chaos: no traffic completed after recovery")
	}

	stats := bed.Bus.Stats()
	final, _ := g.Record("c1")
	t := &Table{
		ID:     "chaos",
		Title:  "chaos soak: 30% loss, controller partition, site crash",
		Header: []string{"metric", "value"},
	}
	t.AddRow("chain ready under 30% loss (ms)", msOf(createReady))
	t.AddRow("partition detected by heartbeats (ms)", msOf(partitionDetect))
	t.AddRow("partitioned site re-admitted (ms)", msOf(healReadmit))
	t.AddRow("crash detected by heartbeats (ms)", msOf(crashDetect))
	t.AddRow("bus retransmissions", stats.Retries)
	t.AddRow("bus drops (retry budget exhausted)", stats.Drops)
	t.AddRow("bus duplicates suppressed", stats.Duplicates)
	t.AddRow("bus anti-entropy resyncs", stats.Resyncs)
	t.AddRow("messages dropped by injected faults", bed.Net.FaultDrops())
	t.AddRow("round trips before faults", before.Completed)
	t.AddRow("round trips after recovery", after.Completed)
	t.AddRow("stage-1 sites at end", fmt.Sprintf("%v", final.StageSites(1)))
	t.Notes = append(t.Notes,
		"every fault is detected by heartbeat silence alone; no manual failure call",
		"data-plane packets are datagrams (lost sends are not retried), so round-trip counts reflect raw 30% path loss; the control plane converges regardless")
	return t, nil
}
