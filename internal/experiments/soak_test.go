package experiments

import (
	"testing"
	"time"
)

// TestSoakExperiment runs the soak at its CI-smoke floor and enforces
// the health-harness acceptance bounds on the returned raw result —
// the same assertions the experiment applies internally, plus shape
// checks on the evidence it reports.
func TestSoakExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak experiment")
	}
	tab, res, err := soakRound(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("table has %d rows, want >= 8:\n%+v", len(tab.Rows), tab.Rows)
	}

	// The injected anomaly fired and resolved, and the black box holds
	// a bundle whose window contains the firing alert.
	if res.Alert.FiredAt.IsZero() || res.Alert.ResolvedAt.IsZero() {
		t.Fatalf("alert lifecycle incomplete: %+v", res.Alert)
	}
	if res.AlertDump.Reason != "slo-alert" || res.AlertDump.Alerts == 0 {
		t.Fatalf("flight bundle did not capture the alert: %+v", res.AlertDump)
	}
	if res.AlertDump.Spans+res.AlertDump.Events == 0 || !res.AlertDump.Profiles {
		t.Fatalf("flight bundle not self-contained: %+v", res.AlertDump)
	}

	// Health verdicts: the watchdog heard every component, nothing
	// leaked, and the heap settled back down.
	if res.Stalls != 0 {
		t.Fatalf("watchdog counted %d stalls, want 0", res.Stalls)
	}
	if res.HeapEnd > res.HeapStart+soakHeapSlack {
		t.Fatalf("GC-settled heap grew %d -> %d bytes", res.HeapStart, res.HeapEnd)
	}
	if res.HeapSlopeBps > soakMaxSteadySlope {
		t.Fatalf("steady heap trend %+.0f B/s exceeds bound", res.HeapSlopeBps)
	}

	// The churn loop really churned, and the flap really rerouted.
	if res.ChainsChurned == 0 {
		t.Fatal("no ephemeral chains churned")
	}
	if res.FlapReroute <= 0 || res.FlapReroute > 15*time.Second {
		t.Fatalf("flap reroute took %v", res.FlapReroute)
	}
}
