// Package edge implements Switchboard's edge service: the instances that
// sit between customer devices and the Switchboard overlay. On ingress an
// edge instance classifies packets against customer chain specifications,
// affixes the chain and egress-site labels, and hands the packet to its
// forwarder; on egress it strips labels and delivers to the destination.
// It remembers connections it has egressed so reverse traffic re-enters
// the overlay with the same label stack, preserving the forwarders' flow
// keys (Section 5.3, "conformity" and "symmetric return").
package edge

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"switchboard/internal/labels"
	"switchboard/internal/metrics"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
)

// MatchRule classifies a traffic slice to a chain (Section 2: VLAN or IP
// header attributes select which chain applies). Zero fields match all.
type MatchRule struct {
	Src     packet.Prefix
	Dst     packet.Prefix
	Proto   uint8
	DstPort uint16
	// Chain is the chain label applied on match.
	Chain uint32
	// Name is the chain's name, used as the key of the edge's per-chain
	// metric series. Empty falls back to the decimal chain label.
	Name string
}

// Matches reports whether the rule matches the key.
func (r MatchRule) Matches(k packet.FlowKey) bool {
	if !r.Src.Contains(k.SrcIP) || !r.Dst.Contains(k.DstIP) {
		return false
	}
	if r.Proto != 0 && r.Proto != k.Proto {
		return false
	}
	if r.DstPort != 0 && r.DstPort != k.DstPort {
		return false
	}
	return true
}

// EgressRoute maps a destination prefix to the egress-site label, the
// per-customer routing table of Section 5.3 (VRF-style).
type EgressRoute struct {
	Dst    packet.Prefix
	Egress uint32
}

// Stats counts edge activity.
type Stats struct {
	Ingressed   uint64 // packets labeled and sent into the overlay
	Egressed    uint64 // packets delivered to local destinations
	Unmatched   uint64 // packets with no matching chain rule
	NoEgress    uint64 // packets with no egress route
	NoLocalHost uint64 // egress packets with unknown destination host
}

// Instance is one edge instance at a site.
type Instance struct {
	ep        *simnet.Endpoint
	forwarder simnet.Addr
	siteLabel uint32

	mu          sync.RWMutex
	rules       []MatchRule
	egressTable []EgressRoute
	localHosts  map[uint32]simnet.Addr
	conns       map[packet.FlowKey]labels.Stack
	// chainIn/chainOut are per-chain keyed counter families (set by
	// RegisterMetrics; nil: counters still count, unpublished), and
	// chainInOf/chainOutOf resolve a chain label to its counters on the
	// packet path. Populated by RegisterChain / AddRule; guarded by mu.
	chainIn, chainOut     *metrics.KeyedCounters
	chainInOf, chainOutOf map[uint32]*metrics.Counter

	ingressed, egressed, unmatched, noEgress, noLocalHost atomic.Uint64
}

// NewInstance creates an edge instance. siteLabel is this site's egress
// label; forwarder is the Switchboard forwarder the instance attaches to.
func NewInstance(ep *simnet.Endpoint, forwarder simnet.Addr, siteLabel uint32) *Instance {
	return &Instance{
		ep:         ep,
		forwarder:  forwarder,
		siteLabel:  siteLabel,
		localHosts: make(map[uint32]simnet.Addr),
		conns:      make(map[packet.FlowKey]labels.Stack),
		chainInOf:  make(map[uint32]*metrics.Counter),
		chainOutOf: make(map[uint32]*metrics.Counter),
	}
}

// Addr returns the instance's overlay address.
func (e *Instance) Addr() simnet.Addr { return e.ep.Addr() }

// SiteLabel returns the site's egress label.
func (e *Instance) SiteLabel() uint32 { return e.siteLabel }

// SetForwarder repoints the instance at a (possibly new) forwarder.
func (e *Instance) SetForwarder(a simnet.Addr) {
	e.mu.Lock()
	e.forwarder = a
	e.mu.Unlock()
}

// AddRule appends a classification rule. Rules match in insertion order.
// The rule's chain is registered for per-chain metric attribution.
func (e *Instance) AddRule(r MatchRule) {
	e.mu.Lock()
	e.rules = append(e.rules, r)
	e.registerChainLocked(r.Chain, r.Name)
	e.mu.Unlock()
}

// RegisterChain resolves (creating on first use) the per-chain
// ingressed/egressed counters for a chain label, keyed by the chain's
// name (or the decimal label when unnamed). The control plane calls it
// on both ingress and egress edges of a chain so egress traffic —
// classified remotely, so never matched by a local rule — is still
// attributed.
func (e *Instance) RegisterChain(chain uint32, name string) {
	e.mu.Lock()
	e.registerChainLocked(chain, name)
	e.mu.Unlock()
}

func (e *Instance) registerChainLocked(chain uint32, name string) {
	if e.chainIn != nil {
		if name == "" {
			name = strconv.FormatUint(uint64(chain), 10)
		}
		e.chainInOf[chain] = e.chainIn.Get(name)
		e.chainOutOf[chain] = e.chainOut.Get(name)
		return
	}
	if e.chainInOf[chain] == nil {
		e.chainInOf[chain] = &metrics.Counter{}
		e.chainOutOf[chain] = &metrics.Counter{}
	}
}

// ChainCounters returns load functions over a chain's per-chain
// ingressed/egressed counters, registering the chain first if this edge
// has not seen it — the offered/delivered pair the SLO evaluator diffs
// for its loss signal.
func (e *Instance) ChainCounters(chain uint32, name string) (ingressed, egressed func() uint64) {
	e.mu.Lock()
	if e.chainInOf[chain] == nil {
		e.registerChainLocked(chain, name)
	}
	in, out := e.chainInOf[chain], e.chainOutOf[chain]
	e.mu.Unlock()
	return in.Load, out.Load
}

// ForgetChain garbage-collects a deleted chain's per-chain counters:
// the keyed instances are unregistered from the metrics registry and
// the label-indexed caches dropped (typically via slo.ChainSLO.Release
// when the chain is forgotten). name follows RegisterChain's keying.
func (e *Instance) ForgetChain(chain uint32, name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.chainInOf, chain)
	delete(e.chainOutOf, chain)
	if e.chainIn != nil {
		if name == "" {
			name = strconv.FormatUint(uint64(chain), 10)
		}
		e.chainIn.Forget(name)
		e.chainOut.Forget(name)
	}
}

// RemoveChainRules drops all rules for a chain label.
func (e *Instance) RemoveChainRules(chain uint32) {
	e.mu.Lock()
	out := e.rules[:0]
	for _, r := range e.rules {
		if r.Chain != chain {
			out = append(out, r)
		}
	}
	e.rules = out
	e.mu.Unlock()
}

// AddEgressRoute appends a destination-prefix → egress-label route.
func (e *Instance) AddEgressRoute(r EgressRoute) {
	e.mu.Lock()
	e.egressTable = append(e.egressTable, r)
	e.mu.Unlock()
}

// RegisterHost binds a local destination IP to its delivery address.
func (e *Instance) RegisterHost(ip uint32, a simnet.Addr) {
	e.mu.Lock()
	e.localHosts[ip] = a
	e.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (e *Instance) Stats() Stats {
	return Stats{
		Ingressed:   e.ingressed.Load(),
		Egressed:    e.egressed.Load(),
		Unmatched:   e.unmatched.Load(),
		NoEgress:    e.noEgress.Load(),
		NoLocalHost: e.noLocalHost.Load(),
	}
}

// RegisterMetrics publishes the edge instance's counters into a metrics
// registry under "edge.<host>.*" (host is the instance's simnet host
// name). All are cumulative packet counts mirroring Stats:
//
//	edge.<host>.ingressed     packets labeled and sent into the overlay
//	edge.<host>.egressed      packets delivered to local destinations
//	edge.<host>.unmatched     packets with no matching chain rule
//	edge.<host>.no_egress     packets with no egress route
//	edge.<host>.no_local_host egress packets with unknown destination host
//
// plus one gauge:
//
//	edge.<host>.match_rules   classification rules currently installed
//
// Per-chain dimensional series (keyed families, bounded cardinality;
// <chain> is the chain's name or its decimal label when unnamed):
//
//	edge.<host>.chain.<chain>.ingressed  packets the chain sent into the overlay here
//	edge.<host>.chain.<chain>.egressed   packets the chain delivered to local hosts here
func (e *Instance) RegisterMetrics(r *metrics.Registry) {
	prefix := "edge." + e.ep.Addr().Host + "."
	r.CounterFunc(prefix+"ingressed", e.ingressed.Load)
	r.CounterFunc(prefix+"egressed", e.egressed.Load)
	r.CounterFunc(prefix+"unmatched", e.unmatched.Load)
	r.CounterFunc(prefix+"no_egress", e.noEgress.Load)
	r.CounterFunc(prefix+"no_local_host", e.noLocalHost.Load)
	r.GaugeFunc(prefix+"match_rules", func() float64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return float64(len(e.rules))
	})
	e.mu.Lock()
	e.chainIn = metrics.NewKeyedCounters(r, prefix+"chain.<chain>.ingressed", 0)
	e.chainOut = metrics.NewKeyedCounters(r, prefix+"chain.<chain>.egressed", 0)
	e.mu.Unlock()
}

// HandlePacket processes one packet: labeled packets egress to local
// hosts; unlabeled packets ingress into the overlay. It returns the
// destination address and true when the packet should be sent.
func (e *Instance) HandlePacket(p *packet.Packet) (simnet.Addr, bool) {
	if p.Labeled {
		return e.egress(p)
	}
	return e.ingress(p)
}

func (e *Instance) ingress(p *packet.Packet) (simnet.Addr, bool) {
	e.mu.RLock()
	// Known connection (typically reverse traffic of a chain that
	// egressed here): reuse the recorded stack.
	canon, _ := p.Key.Canonical()
	if st, ok := e.conns[canon]; ok {
		fw := e.forwarder
		cc := e.chainInOf[st.Chain]
		e.mu.RUnlock()
		p.Labels = st
		p.Labeled = true
		e.ingressed.Add(1)
		if cc != nil {
			cc.Inc()
		}
		return fw, true
	}
	var chain uint32
	matched := false
	for _, r := range e.rules {
		if r.Matches(p.Key) {
			chain = r.Chain
			matched = true
			break
		}
	}
	if !matched {
		e.mu.RUnlock()
		e.unmatched.Add(1)
		return simnet.Addr{}, false
	}
	egress := uint32(0)
	found := false
	for _, r := range e.egressTable {
		if r.Dst.Contains(p.Key.DstIP) {
			egress = r.Egress
			found = true
			break
		}
	}
	fw := e.forwarder
	cc := e.chainInOf[chain]
	e.mu.RUnlock()
	if !found {
		e.noEgress.Add(1)
		return simnet.Addr{}, false
	}
	p.Labels = labels.Stack{Chain: chain, Egress: egress}
	p.Labeled = true
	e.ingressed.Add(1)
	if cc != nil {
		cc.Inc()
	}
	return fw, true
}

func (e *Instance) egress(p *packet.Packet) (simnet.Addr, bool) {
	canon, _ := p.Key.Canonical()
	e.mu.Lock()
	e.conns[canon] = p.Labels
	dst, ok := e.localHosts[p.Key.DstIP]
	cc := e.chainOutOf[p.Labels.Chain]
	e.mu.Unlock()
	if !ok {
		e.noLocalHost.Add(1)
		return simnet.Addr{}, false
	}
	p.Labeled = false
	e.egressed.Add(1)
	if cc != nil {
		cc.Inc()
	}
	return dst, true
}

// Run drives the instance from its endpoint until the context is
// cancelled or the inbox closes. Bursts are drained from the inbox and
// ingress packets heading into the overlay are coalesced into one batch
// per forwarder per burst; egress packets are delivered to local hosts
// individually, since hosts are outside the batched overlay path.
func (e *Instance) Run(ctx context.Context) {
	msgs := make([]simnet.Message, packet.DefaultBatchSize)
	var groups []overlayGroup
	node := "edge:" + e.ep.Addr().Host
	for {
		n := e.ep.RecvBatchContext(ctx, msgs)
		if n == 0 {
			return
		}
		groups = groups[:0]
		// Traced packets stamp arrival/departure per burst: one clock
		// read each per wakeup, none when nothing is traced.
		var arrive, depart packet.LazyNow
		handle := func(p *packet.Packet, pool *packet.Pool, burst int) {
			packet.TraceArrive(p, node, &arrive, burst)
			to, send := e.HandlePacket(p)
			if !send {
				if pool != nil {
					pool.Put(p)
				}
				return
			}
			size := len(p.Payload) + 40
			if !p.Labeled {
				// Egress toward a local host: plain single delivery.
				// Departure is stamped here because ownership transfers
				// on Send; overlay packets are stamped in the post-loop
				// send pass instead.
				packet.TraceDepart(p, &depart)
				_ = e.ep.Send(to, p, size)
				return
			}
			for gi := range groups {
				if groups[gi].addr == to {
					groups[gi].b.Append(p, size)
					return
				}
			}
			b := packet.GetBatch()
			b.Pool = pool
			b.Append(p, size)
			groups = append(groups, overlayGroup{addr: to, b: b})
		}
		for k := 0; k < n; k++ {
			switch pl := msgs[k].Payload.(type) {
			case *packet.Packet:
				handle(pl, nil, 1)
			case *packet.Batch:
				burst := pl.Len()
				for _, p := range pl.Pkts {
					handle(p, pl.Pool, burst)
				}
				packet.PutBatch(pl)
			}
			msgs[k] = simnet.Message{}
		}
		// Departure for overlay-bound packets is stamped per burst, after
		// the whole burst has been processed and grouped — matching the
		// forwarder's at-hop semantics (arrival→departure covers the full
		// wakeup's processing), so cross-hop comparisons stay apples to
		// apples. One clock read covers every traced packet.
		for gi := range groups {
			b := groups[gi].b
			for _, p := range b.Pkts {
				packet.TraceDepart(p, &depart)
			}
			if b.Len() == 1 {
				_ = e.ep.Send(groups[gi].addr, b.Pkts[0], b.Sizes[0])
				packet.PutBatch(b)
			} else {
				_ = e.ep.SendBatch(groups[gi].addr, b)
			}
			groups[gi] = overlayGroup{}
		}
	}
}

// overlayGroup accumulates ingress packets sharing a forwarder.
type overlayGroup struct {
	addr simnet.Addr
	b    *packet.Batch
}

// Start launches Run on a goroutine and returns a stop function.
func (e *Instance) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}
