package edge

import (
	"testing"
	"time"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
)

func testInstance(t *testing.T) (*Instance, *simnet.Network, *simnet.Endpoint) {
	t.Helper()
	n := simnet.New(1)
	t.Cleanup(n.Close)
	ep, err := n.Attach(simnet.Addr{Site: "A", Host: "edge"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := n.Attach(simnet.Addr{Site: "A", Host: "fwd"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	e := NewInstance(ep, fw.Addr(), 3)
	return e, n, fw
}

func key(src, dst uint32, dp uint16) packet.FlowKey {
	return packet.FlowKey{SrcIP: src, DstIP: dst, SrcPort: 40000, DstPort: dp, Proto: 6}
}

func TestIngressClassifiesAndLabels(t *testing.T) {
	e, _, fw := testInstance(t)
	e.AddRule(MatchRule{Src: packet.Prefix{IP: 0x0A000000, Bits: 8}, Chain: 100})
	e.AddEgressRoute(EgressRoute{Dst: packet.Prefix{IP: 0xC0A80000, Bits: 16}, Egress: 7})
	p := &packet.Packet{Key: key(0x0A000001, 0xC0A80005, 80)}
	to, send := e.HandlePacket(p)
	if !send {
		t.Fatal("ingress packet not forwarded")
	}
	if to != fw.Addr() {
		t.Errorf("sent to %v, want forwarder", to)
	}
	if !p.Labeled || p.Labels != (labels.Stack{Chain: 100, Egress: 7}) {
		t.Errorf("labels = %+v labeled=%v", p.Labels, p.Labeled)
	}
}

func TestIngressUnmatchedDropped(t *testing.T) {
	e, _, _ := testInstance(t)
	e.AddRule(MatchRule{Src: packet.Prefix{IP: 0x0A000000, Bits: 8}, Chain: 100})
	p := &packet.Packet{Key: key(0x0B000001, 0xC0A80005, 80)}
	if _, send := e.HandlePacket(p); send {
		t.Error("unmatched packet forwarded")
	}
	if e.Stats().Unmatched != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestIngressNoEgressRouteDropped(t *testing.T) {
	e, _, _ := testInstance(t)
	e.AddRule(MatchRule{Chain: 100})
	p := &packet.Packet{Key: key(0x0A000001, 0xC0A80005, 80)}
	if _, send := e.HandlePacket(p); send {
		t.Error("packet without egress route forwarded")
	}
	if e.Stats().NoEgress != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestRuleOrderFirstMatchWins(t *testing.T) {
	e, _, _ := testInstance(t)
	e.AddRule(MatchRule{DstPort: 80, Chain: 1})
	e.AddRule(MatchRule{Chain: 2})
	e.AddEgressRoute(EgressRoute{Egress: 9})
	p := &packet.Packet{Key: key(1, 2, 80)}
	e.HandlePacket(p)
	if p.Labels.Chain != 1 {
		t.Errorf("chain = %d, want 1 (first match)", p.Labels.Chain)
	}
	p2 := &packet.Packet{Key: key(1, 2, 443)}
	e.HandlePacket(p2)
	if p2.Labels.Chain != 2 {
		t.Errorf("chain = %d, want 2 (fallthrough)", p2.Labels.Chain)
	}
}

func TestEgressStripsAndDelivers(t *testing.T) {
	e, n, _ := testInstance(t)
	host, err := n.Attach(simnet.Addr{Site: "A", Host: "laptop"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHost(0xC0A80005, host.Addr())
	p := &packet.Packet{
		Labels: labels.Stack{Chain: 100, Egress: 3}, Labeled: true,
		Key: key(0x0A000001, 0xC0A80005, 80),
	}
	to, send := e.HandlePacket(p)
	if !send || to != host.Addr() {
		t.Fatalf("egress = %v, %v", to, send)
	}
	if p.Labeled {
		t.Error("labels not stripped at egress")
	}
	if e.Stats().Egressed != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestEgressUnknownHostDropped(t *testing.T) {
	e, _, _ := testInstance(t)
	p := &packet.Packet{Labels: labels.Stack{Chain: 1, Egress: 3}, Labeled: true, Key: key(1, 2, 80)}
	if _, send := e.HandlePacket(p); send {
		t.Error("packet to unknown host delivered")
	}
	if e.Stats().NoLocalHost != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestReverseTrafficReusesStack(t *testing.T) {
	e, n, fw := testInstance(t)
	host, err := n.Attach(simnet.Addr{Site: "A", Host: "server"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHost(0xC0A80005, host.Addr())
	// Forward packet egresses here: connection remembered.
	st := labels.Stack{Chain: 100, Egress: 3}
	fwdPkt := &packet.Packet{Labels: st, Labeled: true, Key: key(0x0A000001, 0xC0A80005, 80)}
	if _, send := e.HandlePacket(fwdPkt); !send {
		t.Fatal("forward egress failed")
	}
	// Reverse packet from the server: same stack re-applied, even with
	// no matching classifier rule.
	rev := &packet.Packet{Key: key(0x0A000001, 0xC0A80005, 80).Reverse()}
	to, send := e.HandlePacket(rev)
	if !send || to != fw.Addr() {
		t.Fatalf("reverse ingress = %v, %v", to, send)
	}
	if !rev.Labeled || rev.Labels != st {
		t.Errorf("reverse labels = %+v, want %+v", rev.Labels, st)
	}
}

func TestRemoveChainRules(t *testing.T) {
	e, _, _ := testInstance(t)
	e.AddRule(MatchRule{DstPort: 80, Chain: 1})
	e.AddRule(MatchRule{Chain: 2})
	e.RemoveChainRules(1)
	e.AddEgressRoute(EgressRoute{Egress: 9})
	p := &packet.Packet{Key: key(1, 2, 80)}
	e.HandlePacket(p)
	if p.Labels.Chain != 2 {
		t.Errorf("chain = %d, want 2 after removing chain 1 rules", p.Labels.Chain)
	}
}

func TestRunLoopEndToEnd(t *testing.T) {
	e, n, fw := testInstance(t)
	e.AddRule(MatchRule{Chain: 5})
	e.AddEgressRoute(EgressRoute{Egress: 6})
	stop := e.Start()
	defer stop()
	src, err := n.Attach(simnet.Addr{Site: "A", Host: "cam"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Key: key(1, 2, 80), Payload: []byte("frame")}
	if err := src.Send(e.Addr(), p, 5); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fw.Inbox():
		got := m.Payload.(*packet.Packet)
		if !got.Labeled || got.Labels.Chain != 5 {
			t.Errorf("labels = %+v", got.Labels)
		}
	case <-time.After(time.Second):
		t.Fatal("packet never reached forwarder")
	}
}
