package topology

import (
	"math"

	"switchboard/internal/model"
)

// Expanded constructs a backbone scaled past the 25-city core: the core
// metros keep their real positions, populations, and link mesh, and the
// remaining numNodes-25 nodes become satellite PoPs — smaller sites
// placed 30-150 km from a parent metro with a gravity weight of 5-20% of
// the parent's population. Satellites round-robin across parents so the
// expansion stays geographically balanced, and every fourth satellite is
// dual-homed to a second metro for path diversity. Construction is
// deterministic: the same numNodes and Options always yield the same
// network. numNodes below the core size is clamped to NumNodes, so
// Expanded(NumNodes, opts) is exactly Backbone(opts).
func Expanded(numNodes int, opts Options) *model.Network {
	opts.setDefaults()
	if numNodes < NumNodes {
		numNodes = NumNodes
	}
	nw := model.NewNetwork(numNodes, opts.MLU)

	// Node table: the 25 metros, then synthesized satellites.
	sites := make([]city, numNodes)
	copy(sites, cities)
	for i := range sites[:NumNodes] {
		nw.SetWeight(model.NodeID(i), sites[i].Pop)
	}
	rng := expandRNG(uint64(numNodes))
	for i := NumNodes; i < numNodes; i++ {
		parent := (i - NumNodes) % NumNodes
		p := cities[parent]
		// 30-150 km from the parent at a deterministic bearing. One
		// degree of latitude is ~111 km; longitude shrinks by cos(lat).
		km := 30 + 120*rng()
		bearing := 2 * math.Pi * rng()
		lat := p.Lat + km*math.Cos(bearing)/111.0
		lon := p.Lon + km*math.Sin(bearing)/(111.0*math.Cos(p.Lat*math.Pi/180))
		sites[i] = city{
			Name: NodeName(model.NodeID(i)),
			Lat:  lat,
			Lon:  lon,
			Pop:  p.Pop * (0.05 + 0.15*rng()),
		}
		nw.SetWeight(model.NodeID(i), sites[i].Pop)
	}

	adj := make([][]edge, numNodes)
	addLink := func(a, b model.NodeID) {
		d := propagationDelay(sites[a], sites[b])
		ab := nw.AddLink(a, b, opts.LinkBandwidth, 0)
		ba := nw.AddLink(b, a, opts.LinkBandwidth, 0)
		adj[a] = append(adj[a], edge{to: b, delay: d, link: ab})
		adj[b] = append(adj[b], edge{to: a, delay: d, link: ba})
	}
	for _, pair := range backboneLinks {
		addLink(model.NodeID(pair[0]), model.NodeID(pair[1]))
	}
	for i := NumNodes; i < numNodes; i++ {
		parent := (i - NumNodes) % NumNodes
		addLink(model.NodeID(i), model.NodeID(parent))
		if (i-NumNodes)%4 == 3 {
			addLink(model.NodeID(i), model.NodeID((parent+1)%NumNodes))
		}
	}

	finalize(nw, adj, opts)
	return nw
}

// expandRNG returns a deterministic xorshift64* generator in [0,1),
// seeded from the requested topology size so every build of a given size
// is identical.
func expandRNG(seed uint64) func() float64 {
	state := seed*2862933555777941757 + 3037000493
	return func() float64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*2685821657736338717)>>11) / float64(1<<53)
	}
}
