package topology

import (
	"reflect"
	"testing"
	"time"

	"switchboard/internal/model"
	"switchboard/internal/workload"
)

func TestExpandedStructure(t *testing.T) {
	const n = 200
	nw := Expanded(n, Options{BackgroundFraction: 0.2})
	if len(nw.Nodes) != n {
		t.Fatalf("nodes = %d, want %d", len(nw.Nodes), n)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	// Core mesh plus one uplink per satellite plus a second uplink for
	// every fourth satellite, both directions each.
	sats := n - NumNodes
	wantLinks := 2 * (len(backboneLinks) + sats + sats/4)
	if len(nw.Links) != wantLinks {
		t.Errorf("links = %d, want %d", len(nw.Links), wantLinks)
	}
	// Every pair is reachable with a finite, symmetric delay.
	for _, a := range nw.Nodes {
		for _, b := range nw.Nodes {
			d := nw.Delay[a][b]
			if a != b && (d <= 0 || d > 200*time.Millisecond) {
				t.Fatalf("delay %d->%d = %v, want finite positive", a, b, d)
			}
			if d != nw.Delay[b][a] {
				t.Fatalf("delay asymmetric %d<->%d", a, b)
			}
		}
	}
	// Satellites are lighter than their parent metros.
	for i := NumNodes; i < n; i++ {
		parent := model.NodeID((i - NumNodes) % NumNodes)
		sat := model.NodeID(i)
		if nw.GravityWeight(sat) >= nw.GravityWeight(parent) {
			t.Fatalf("satellite %d weight %v >= parent %v", i,
				nw.GravityWeight(sat), nw.GravityWeight(parent))
		}
		// A satellite sits 30-150 km from its parent: under ~1.5 ms of
		// single-hop propagation delay.
		if d := nw.Delay[sat][parent]; d > 1500*time.Microsecond {
			t.Errorf("satellite %d->parent delay = %v, want < 1.5 ms", i, d)
		}
	}
	// Background traffic landed on the links.
	bg := 0.0
	for _, l := range nw.Links {
		bg += l.Background
	}
	if bg <= 0 {
		t.Error("no background traffic despite BackgroundFraction > 0")
	}
}

// linksEqual compares link tables field-for-field, allowing floating
// jitter on Background: it is accumulated over Go map iteration, whose
// order varies run to run, so the sum is only stable to rounding.
func linksEqual(a, b []model.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		la, lb := a[i], b[i]
		if la.ID != lb.ID || la.From != lb.From || la.To != lb.To || la.Bandwidth != lb.Bandwidth {
			return false
		}
		if d := la.Background - lb.Background; d > 1e-6*(1+la.Background) || d < -1e-6*(1+la.Background) {
			return false
		}
	}
	return true
}

func TestExpandedDeterministic(t *testing.T) {
	a := Expanded(120, Options{BackgroundFraction: 0.2})
	b := Expanded(120, Options{BackgroundFraction: 0.2})
	if !reflect.DeepEqual(a.Weight, b.Weight) {
		t.Fatal("weights differ between identical builds")
	}
	if !linksEqual(a.Links, b.Links) {
		t.Fatal("links differ between identical builds")
	}
	if !reflect.DeepEqual(a.Delay, b.Delay) {
		t.Fatal("delays differ between identical builds")
	}
}

func TestExpandedCoreMatchesBackbone(t *testing.T) {
	opts := Options{BackgroundFraction: 0.2}
	exp := Expanded(NumNodes, opts)
	bb := Backbone(opts)
	if !reflect.DeepEqual(exp.Delay, bb.Delay) {
		t.Error("Expanded(NumNodes) delays differ from Backbone")
	}
	if !linksEqual(exp.Links, bb.Links) {
		t.Error("Expanded(NumNodes) links differ from Backbone")
	}
	if !reflect.DeepEqual(exp.Weight, bb.Weight) {
		t.Error("Expanded(NumNodes) weights differ from Backbone")
	}
}

// TestExpandedWorkload exercises the chain generator at a site count far
// past the 25-city table, which used to panic in the gravity-weight
// lookups.
func TestExpandedWorkload(t *testing.T) {
	nw := Expanded(150, Options{})
	workload.Populate(nw, workload.ChainGenOptions{
		NumChains: 200,
		NumVNFs:   30,
		Coverage:  0.5,
		NumSites:  150,
		Seed:      1,
	})
	if len(nw.Chains) != 200 {
		t.Fatalf("chains = %d, want 200", len(nw.Chains))
	}
	if len(nw.Sites) != 150 {
		t.Fatalf("sites = %d, want 150", len(nw.Sites))
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}
