package topology

import (
	"testing"
	"time"

	"switchboard/internal/model"
)

func TestBackboneStructure(t *testing.T) {
	nw := Backbone(Options{})
	if len(nw.Nodes) != NumNodes {
		t.Fatalf("nodes = %d, want %d", len(nw.Nodes), NumNodes)
	}
	if len(nw.Links) != 2*len(backboneLinks) {
		t.Errorf("links = %d, want %d (both directions)", len(nw.Links), 2*len(backboneLinks))
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestBackboneDelaysSane(t *testing.T) {
	nw := Backbone(Options{})
	// Seattle (0) to Miami (17) is a cross-country path: expect one-way
	// delay between 15 ms and 60 ms.
	d := nw.Delay[0][17]
	if d < 15*time.Millisecond || d > 60*time.Millisecond {
		t.Errorf("Seattle->Miami delay = %v, want 15-60 ms", d)
	}
	// Adjacent cities (Seattle-Portland) should be very close.
	if d := nw.Delay[0][1]; d > 5*time.Millisecond {
		t.Errorf("Seattle->Portland delay = %v, want < 5 ms", d)
	}
	// Symmetry.
	for _, a := range nw.Nodes {
		for _, b := range nw.Nodes {
			if nw.Delay[a][b] != nw.Delay[b][a] {
				t.Fatalf("delay asymmetric %d<->%d: %v vs %v", a, b, nw.Delay[a][b], nw.Delay[b][a])
			}
		}
	}
}

func TestBackboneTriangleInequality(t *testing.T) {
	// Shortest-path delays must satisfy the triangle inequality.
	nw := Backbone(Options{})
	for _, a := range nw.Nodes {
		for _, b := range nw.Nodes {
			for _, c := range nw.Nodes {
				if nw.Delay[a][b] > nw.Delay[a][c]+nw.Delay[c][b] {
					t.Fatalf("triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)",
						a, b, nw.Delay[a][b], a, c, c, b)
				}
			}
		}
	}
}

func TestBackboneRouteFractions(t *testing.T) {
	nw := Backbone(Options{})
	// Every distinct pair must have at least one routed link, each link
	// on the route must carry fraction 1 (single shortest path), and the
	// route's total delay must equal the delay matrix entry.
	for _, s := range nw.Nodes {
		for _, d := range nw.Nodes {
			if s == d {
				continue
			}
			fr := nw.RouteFrac[s][d]
			if len(fr) == 0 {
				t.Fatalf("no route %d->%d", s, d)
			}
			for e, f := range fr {
				if f != 1.0 {
					t.Fatalf("route %d->%d link %d fraction %v, want 1", s, d, e, f)
				}
			}
		}
	}
	// A route from Seattle to Portland should be the direct link.
	fr := nw.RouteFrac[0][1]
	if len(fr) != 1 {
		t.Errorf("Seattle->Portland uses %d links, want direct link", len(fr))
	}
}

func TestBackboneConnected(t *testing.T) {
	nw := Backbone(Options{})
	for _, a := range nw.Nodes {
		for _, b := range nw.Nodes {
			if a != b && nw.Delay[a][b] <= 0 {
				t.Fatalf("unreachable or zero delay %d->%d", a, b)
			}
		}
	}
}

func TestBackboneBackgroundTraffic(t *testing.T) {
	nw := Backbone(Options{BackgroundFraction: 0.2})
	total := 0.0
	overCap := 0
	for _, l := range nw.Links {
		total += l.Background
		if l.Background > l.Bandwidth {
			overCap++
		}
	}
	if total <= 0 {
		t.Fatal("no background traffic generated")
	}
	mean := total / float64(len(nw.Links))
	want := 0.2 * 40000
	if mean < want*0.99 || mean > want*1.01 {
		t.Errorf("mean background = %v, want ≈ %v", mean, want)
	}
}

func TestGravityMatrix(t *testing.T) {
	nw := Backbone(Options{})
	tm := GravityMatrix(nw, 500)
	total := 0.0
	for s := range tm {
		if tm[s][s] != 0 {
			t.Errorf("diagonal entry for %d nonzero", s)
		}
		for _, v := range tm[s] {
			if v < 0 {
				t.Fatal("negative traffic entry")
			}
			total += v
		}
	}
	if total < 499.999 || total > 500.001 {
		t.Errorf("total demand = %v, want 500", total)
	}
	// NY (22, pop 19.2) to LA (3, pop 13.2) should be the single largest
	// entry.
	maxV := 0.0
	var maxS, maxD model.NodeID
	for s := range tm {
		for d, v := range tm[s] {
			if v > maxV {
				maxV, maxS, maxD = v, s, d
			}
		}
	}
	okPair := (maxS == 22 && maxD == 3) || (maxS == 3 && maxD == 22)
	if !okPair {
		t.Errorf("largest TM entry is %d->%d, want NY<->LA", maxS, maxD)
	}
}

func TestNodeName(t *testing.T) {
	if NodeName(0) != "Seattle" || NodeName(22) != "NewYork" {
		t.Error("NodeName mapping wrong")
	}
	if NodeName(99) != "node99" {
		t.Errorf("NodeName(99) = %q", NodeName(99))
	}
}
