// Package topology builds the synthetic tier-1 backbone and traffic
// matrix used by Switchboard's traffic-engineering evaluation. It stands
// in for the proprietary AT&T backbone topology and March-2015 traffic
// snapshot: a 25-PoP continental mesh with propagation delays derived from
// great-circle fiber distance and a gravity-model traffic matrix weighted
// by metro population.
package topology

import (
	"fmt"
	"math"
	"time"

	"switchboard/internal/model"
)

// Options configures backbone construction.
type Options struct {
	// LinkBandwidth is the capacity of every backbone link, in traffic
	// units (experiments use Mbps). Default 40000 (a 40 Gbps trunk).
	LinkBandwidth float64
	// BackgroundFraction is the fraction of each link's bandwidth
	// consumed by non-Switchboard (transit) traffic, spread from the
	// gravity traffic matrix. The paper uses a 4:1 Switchboard-to-
	// background split; 1/5 of demand as background matches that.
	BackgroundFraction float64
	// MLU is the maximum-link-utilization limit β. Default 1.0.
	MLU float64
}

func (o *Options) setDefaults() {
	if o.LinkBandwidth == 0 {
		o.LinkBandwidth = 40000
	}
	if o.MLU == 0 {
		o.MLU = 1.0
	}
}

// NumNodes is the size of the synthetic backbone.
const NumNodes = 25

// NodeName returns the metro name of a backbone node; nodes past the
// 25-city table (expanded-topology satellites) get a synthetic name.
func NodeName(n model.NodeID) string {
	if int(n) < 0 || int(n) >= len(cities) {
		return fmt.Sprintf("node%d", n)
	}
	return cities[n].Name
}

// Population returns the gravity weight (metro population in millions)
// of a backbone node, or 1 for nodes outside the 25-city table. Prefer
// Network.GravityWeight, which Backbone and Expanded both populate.
func Population(n model.NodeID) float64 {
	if int(n) < 0 || int(n) >= len(cities) {
		return 1
	}
	return cities[n].Pop
}

// Backbone constructs the 25-node continental network: bidirectional
// links with propagation delays from fiber distance, all-pairs delays via
// shortest paths, and single-shortest-path routing fractions r_{n1 n2 e}.
func Backbone(opts Options) *model.Network {
	opts.setDefaults()
	nw := model.NewNetwork(NumNodes, opts.MLU)
	for i, c := range cities {
		nw.SetWeight(model.NodeID(i), c.Pop)
	}

	// Directed links (both directions of each adjacency).
	adj := make([][]edge, NumNodes)
	for _, pair := range backboneLinks {
		a, b := model.NodeID(pair[0]), model.NodeID(pair[1])
		d := propagationDelay(cities[a], cities[b])
		ab := nw.AddLink(a, b, opts.LinkBandwidth, 0)
		ba := nw.AddLink(b, a, opts.LinkBandwidth, 0)
		adj[a] = append(adj[a], edge{to: b, delay: d, link: ab})
		adj[b] = append(adj[b], edge{to: a, delay: d, link: ba})
	}
	finalize(nw, adj, opts)
	return nw
}

// finalize fills the delay matrix, single-path routing fractions, and
// background traffic of a network whose nodes, links, and weights are
// already in place. Shared by Backbone and Expanded.
func finalize(nw *model.Network, adj [][]edge, opts Options) {
	// All-pairs shortest paths by delay (Dijkstra from every source).
	// Record both the delay matrix and, per destination, the sequence of
	// links used, to fill RouteFrac with 0/1 single-path routing.
	n := len(nw.Nodes)
	for src := 0; src < n; src++ {
		dist, prevLink, prevNode := dijkstra(adj, model.NodeID(src))
		for dst := 0; dst < n; dst++ {
			if dst == src {
				nw.Delay[model.NodeID(src)][model.NodeID(dst)] = 0
				continue
			}
			nw.Delay[model.NodeID(src)][model.NodeID(dst)] = dist[dst]
			fr := make(map[int]float64)
			for at := model.NodeID(dst); at != model.NodeID(src); at = prevNode[at] {
				fr[prevLink[at]] = 1.0
			}
			nw.RouteFrac[model.NodeID(src)][model.NodeID(dst)] = fr
		}
	}

	// Background traffic: route the gravity matrix over shortest paths,
	// scaled so the average link carries BackgroundFraction of capacity.
	if opts.BackgroundFraction > 0 {
		tm := GravityMatrix(nw, 1.0)
		load := make([]float64, len(nw.Links))
		total := 0.0
		for s := range tm {
			for d, v := range tm[s] {
				for e, f := range nw.RouteFrac[s][d] {
					load[e] += f * v
				}
			}
		}
		for _, l := range load {
			total += l
		}
		if total > 0 {
			mean := total / float64(len(load))
			scale := opts.BackgroundFraction * opts.LinkBandwidth / mean
			for i := range nw.Links {
				nw.Links[i].Background = load[i] * scale
			}
		}
	}
}

// edge is a directed adjacency used during construction.
type edge struct {
	to    model.NodeID
	delay time.Duration
	link  int
}

// dijkstra returns, for a single source, per-node shortest-path delay and
// the predecessor link/node on that path. The graph is small (25 nodes) so
// the O(V²) scan is plenty.
func dijkstra(adj [][]edge, src model.NodeID) (dist []time.Duration, prevLink []int, prevNode []model.NodeID) {
	n := len(adj)
	const inf = time.Duration(math.MaxInt64)
	dist = make([]time.Duration, n)
	prevLink = make([]int, n)
	prevNode = make([]model.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prevLink[i] = -1
		prevNode[i] = -1
	}
	dist[src] = 0
	for {
		u := -1
		best := inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = i
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range adj[u] {
			if nd := dist[u] + e.delay; nd < dist[e.to] {
				dist[e.to] = nd
				prevLink[e.to] = e.link
				prevNode[e.to] = model.NodeID(u)
			}
		}
	}
	return dist, prevLink, prevNode
}

// propagationDelay converts great-circle distance between two cities to a
// one-way fiber propagation delay: distance × 1.3 path inflation at
// 200,000 km/s (speed of light in fiber).
func propagationDelay(a, b city) time.Duration {
	km := haversineKm(a.Lat, a.Lon, b.Lat, b.Lon) * 1.3
	seconds := km / 200000.0
	return time.Duration(seconds * float64(time.Second))
}

func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Sqrt(a))
}

// GravityMatrix returns a traffic matrix T[s][d] ∝ weight(s)·weight(d)
// over the network's gravity weights (metro populations on the 25-city
// backbone), normalized so the total demand equals totalDemand. The
// diagonal is zero.
func GravityMatrix(nw *model.Network, totalDemand float64) map[model.NodeID]map[model.NodeID]float64 {
	tm := make(map[model.NodeID]map[model.NodeID]float64, len(nw.Nodes))
	sum := 0.0
	for _, s := range nw.Nodes {
		tm[s] = make(map[model.NodeID]float64, len(nw.Nodes))
		for _, d := range nw.Nodes {
			if s == d {
				continue
			}
			v := nw.GravityWeight(s) * nw.GravityWeight(d)
			tm[s][d] = v
			sum += v
		}
	}
	if sum == 0 {
		return tm
	}
	scale := totalDemand / sum
	for s := range tm {
		for d := range tm[s] {
			tm[s][d] *= scale
		}
	}
	return tm
}
