package topology

// city is one PoP of the synthetic continental backbone: a major US metro
// with an approximate location and population weight. The real Switchboard
// evaluation used a proprietary tier-1 backbone; this stand-in reproduces
// its qualitative structure — a continental mesh with heterogeneous
// population-driven demands and realistic propagation delays.
type city struct {
	Name string
	Lat  float64 // degrees
	Lon  float64 // degrees
	Pop  float64 // metro population, millions (gravity-model weight)
}

// cities lists the 25 PoPs in a fixed order; model.NodeID i corresponds to
// cities[i].
var cities = []city{
	{"Seattle", 47.61, -122.33, 4.0},
	{"Portland", 45.52, -122.68, 2.5},
	{"SanFrancisco", 37.77, -122.42, 4.7},
	{"LosAngeles", 34.05, -118.24, 13.2},
	{"SanDiego", 32.72, -117.16, 3.3},
	{"Phoenix", 33.45, -112.07, 4.9},
	{"SaltLakeCity", 40.76, -111.89, 1.3},
	{"Denver", 39.74, -104.99, 3.0},
	{"Dallas", 32.78, -96.80, 7.6},
	{"Houston", 29.76, -95.37, 7.1},
	{"SanAntonio", 29.42, -98.49, 2.6},
	{"KansasCity", 39.10, -94.58, 2.2},
	{"Minneapolis", 44.98, -93.27, 3.7},
	{"Chicago", 41.88, -87.63, 9.5},
	{"StLouis", 38.63, -90.20, 2.8},
	{"Nashville", 36.16, -86.78, 2.0},
	{"Atlanta", 33.75, -84.39, 6.1},
	{"Miami", 25.76, -80.19, 6.2},
	{"Orlando", 28.54, -81.38, 2.6},
	{"Charlotte", 35.23, -80.84, 2.7},
	{"Washington", 38.91, -77.04, 6.3},
	{"Philadelphia", 39.95, -75.17, 6.2},
	{"NewYork", 40.71, -74.01, 19.2},
	{"Boston", 42.36, -71.06, 4.9},
	{"Cleveland", 41.50, -81.69, 2.1},
}

// backboneLinks are bidirectional adjacencies forming a realistic
// continental mesh (average degree ≈ 4.5, no long-haul shortcuts that a
// fiber map would not have). Indices refer to the cities slice.
var backboneLinks = [][2]int{
	{0, 1},   // Seattle–Portland
	{0, 6},   // Seattle–SaltLake
	{0, 12},  // Seattle–Minneapolis
	{1, 2},   // Portland–SanFrancisco
	{2, 3},   // SF–LA
	{2, 6},   // SF–SaltLake
	{3, 4},   // LA–SanDiego
	{3, 5},   // LA–Phoenix
	{4, 5},   // SanDiego–Phoenix
	{5, 8},   // Phoenix–Dallas
	{5, 6},   // Phoenix–SaltLake
	{6, 7},   // SaltLake–Denver
	{7, 8},   // Denver–Dallas
	{7, 11},  // Denver–KansasCity
	{7, 12},  // Denver–Minneapolis
	{8, 9},   // Dallas–Houston
	{8, 10},  // Dallas–SanAntonio
	{9, 10},  // Houston–SanAntonio
	{9, 16},  // Houston–Atlanta
	{8, 11},  // Dallas–KansasCity
	{11, 13}, // KansasCity–Chicago
	{11, 14}, // KansasCity–StLouis
	{12, 13}, // Minneapolis–Chicago
	{13, 14}, // Chicago–StLouis
	{13, 24}, // Chicago–Cleveland
	{14, 15}, // StLouis–Nashville
	{15, 16}, // Nashville–Atlanta
	{16, 17}, // Atlanta–Miami
	{16, 18}, // Atlanta–Orlando
	{17, 18}, // Miami–Orlando
	{16, 19}, // Atlanta–Charlotte
	{19, 20}, // Charlotte–Washington
	{20, 21}, // Washington–Philadelphia
	{21, 22}, // Philadelphia–NewYork
	{22, 23}, // NewYork–Boston
	{22, 24}, // NewYork–Cleveland
	{24, 20}, // Cleveland–Washington
	{13, 22}, // Chicago–NewYork (long-haul trunk)
	{3, 8},   // LA–Dallas (long-haul trunk)
	{15, 19}, // Nashville–Charlotte
}
