package packet

import (
	"sync/atomic"
	"time"
)

// Path tracing annotates a sampled subset of packets with the hops they
// actually traverse: each hop appends its node name, arrival and
// departure timestamps, and the burst size the packet travelled in.
// Sinks hand completed traces to a collector (metrics.TraceCollector)
// which turns them into per-chain hop-latency breakdowns.
//
// The design keeps tracing off the per-packet hot path when sampling is
// disabled: an untraced packet carries a nil *Trace, so every stamping
// helper is a single pointer check, and the batched data path reads the
// clock at most once per burst per stamping pass (LazyNow) rather than
// once per packet. See OBSERVABILITY.md for the annotation format and
// sampling semantics.

// TraceHop is one recorded hop of a traced packet's path. Timestamps
// are wall-clock Unix nanoseconds; a zero DepartNs means the packet was
// consumed at the hop (a sink) or the hop never stamped departure.
type TraceHop struct {
	// Node names the hop ("fwd:f1", "vnf:nat0", "edge:e1", "sink").
	Node string `json:"node"`
	// ArriveNs is when the hop dequeued the packet from its inbox.
	ArriveNs int64 `json:"arrive_ns"`
	// DepartNs is when the hop enqueued the packet onward.
	DepartNs int64 `json:"depart_ns"`
	// Batch is the size of the burst the packet arrived in.
	Batch int `json:"batch"`
}

// Trace is the path annotation carried by a sampled packet. It is owned
// by whichever hop currently owns the packet (strict hand-off, like the
// packet itself), so no locking is needed; a hop must not touch a trace
// after sending the packet onward.
type Trace struct {
	// ID identifies the trace within its sampler (unique per sampler).
	ID uint64 `json:"id"`
	// Hops is the path recorded so far, in traversal order.
	Hops []TraceHop `json:"hops"`
}

// traceHopCap pre-sizes a trace's hop slice to cover a typical chain
// (edge + 3 forwarder/VNF stage pairs + sink) without regrowing.
const traceHopCap = 8

// NewTrace returns an empty trace with the given ID, pre-sized for a
// typical chain.
func NewTrace(id uint64) *Trace {
	return &Trace{ID: id, Hops: make([]TraceHop, 0, traceHopCap)}
}

// TraceSampler decides which packets carry a trace: one in Every
// packets is annotated. The zero value and a nil sampler never sample,
// so wiring a sampler through a config struct costs nothing until it is
// enabled. Safe for concurrent use.
type TraceSampler struct {
	every uint64
	ctr   atomic.Uint64
	ids   atomic.Uint64
}

// NewTraceSampler returns a sampler annotating one in every packets
// (every <= 0 disables sampling).
func NewTraceSampler(every int) *TraceSampler {
	s := &TraceSampler{}
	if every > 0 {
		s.every = uint64(every)
	}
	return s
}

// Sample returns a fresh trace when this packet is selected, nil
// otherwise. Callers assign the result to Packet.Trace directly; nil
// receivers and disabled samplers always return nil. Safe for
// concurrent use.
func (s *TraceSampler) Sample() *Trace {
	if s == nil || s.every == 0 {
		return nil
	}
	if s.ctr.Add(1)%s.every != 0 {
		return nil
	}
	return NewTrace(s.ids.Add(1))
}

// Sampled reports how many traces the sampler has issued. Safe for
// concurrent use.
func (s *TraceSampler) Sampled() uint64 {
	if s == nil {
		return 0
	}
	return s.ids.Load()
}

// LazyNow is a per-burst clock: the first traced packet of a burst
// reads the wall clock once and every later stamp in the same pass
// reuses it, so a whole burst is stamped with one clock read and an
// untraced burst reads the clock zero times. Declare a fresh LazyNow
// per stamping pass; not safe for concurrent use (a burst is owned by
// one goroutine).
type LazyNow struct {
	ns int64
}

// Ns returns the burst timestamp in Unix nanoseconds, reading the clock
// on first use.
func (ln *LazyNow) Ns() int64 {
	if ln.ns == 0 {
		ln.ns = time.Now().UnixNano()
	}
	return ln.ns
}

// TraceArrive stamps a hop arrival on a traced packet: a no-op (one nil
// check, no clock read, no allocation) when the packet is untraced.
// batch is the burst size the packet arrived in.
func TraceArrive(p *Packet, node string, now *LazyNow, batch int) {
	if p.Trace == nil {
		return
	}
	p.Trace.Hops = append(p.Trace.Hops, TraceHop{Node: node, ArriveNs: now.Ns(), Batch: batch})
}

// TraceDepart stamps the departure time on the packet's current (last
// recorded) hop: a no-op when the packet is untraced or has no hops.
func TraceDepart(p *Packet, now *LazyNow) {
	if p.Trace == nil || len(p.Trace.Hops) == 0 {
		return
	}
	p.Trace.Hops[len(p.Trace.Hops)-1].DepartNs = now.Ns()
}
