package packet

import "testing"

// TestSteerHashDirectionIndependent pins the RSS steering contract:
// both directions of a connection hash identically, so a runner pool
// lands forward and return packets on the same core.
func TestSteerHashDirectionIndependent(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := FlowKey{
			SrcIP: 0x0A000000 + uint32(i), DstIP: 0xC0A80001 + uint32(i%7),
			SrcPort: uint16(1024 + i), DstPort: 80, Proto: 6,
		}
		if k.SteerHash() != k.Reverse().SteerHash() {
			t.Fatalf("flow %d: SteerHash differs across directions", i)
		}
	}
}

// TestSteerHashSpreadsAcrossCores guards against a degenerate steering
// hash: synthetic flows must not collapse onto a few cores.
func TestSteerHashSpreadsAcrossCores(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		counts := make([]int, cores)
		const flows = 4096
		for i := 0; i < flows; i++ {
			k := FlowKey{
				SrcIP: 0x0A000000 + uint32(i), DstIP: 0xC0A80001,
				SrcPort: uint16(10000 + i%50000), DstPort: 80, Proto: 6,
			}
			counts[k.SteerHash()%uint64(cores)]++
		}
		want := flows / cores
		for c, n := range counts {
			if n < want/2 || n > want*2 {
				t.Errorf("cores=%d: core %d got %d of %d flows (expected ~%d)", cores, c, n, flows, want)
			}
		}
	}
}
