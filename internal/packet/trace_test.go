package packet

import (
	"testing"
)

func TestTraceSamplerEvery(t *testing.T) {
	s := NewTraceSampler(4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if tr := s.Sample(); tr != nil {
			sampled++
		}
	}
	if sampled != 100 {
		t.Errorf("sampled %d of 400 with every=4, want 100", sampled)
	}
	if s.Sampled() != 100 {
		t.Errorf("Sampled() = %d, want 100", s.Sampled())
	}
}

func TestTraceSamplerDisabled(t *testing.T) {
	for _, s := range []*TraceSampler{nil, NewTraceSampler(0), NewTraceSampler(-1), {}} {
		for i := 0; i < 10; i++ {
			if tr := s.Sample(); tr != nil {
				t.Fatalf("disabled sampler returned a trace")
			}
		}
	}
}

func TestTraceSamplerUniqueIDs(t *testing.T) {
	s := NewTraceSampler(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		tr := s.Sample()
		if tr == nil {
			t.Fatal("every=1 sampler skipped a packet")
		}
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %d", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestTraceStampOrdering(t *testing.T) {
	p := &Packet{Trace: NewTrace(1)}
	for _, node := range []string{"edge:in", "fwd:f1", "vnf:v1", "sink:out"} {
		var arrive, depart LazyNow
		TraceArrive(p, node, &arrive, 32)
		TraceDepart(p, &depart)
	}
	hops := p.Trace.Hops
	if len(hops) != 4 {
		t.Fatalf("recorded %d hops, want 4", len(hops))
	}
	wantOrder := []string{"edge:in", "fwd:f1", "vnf:v1", "sink:out"}
	var prevDepart int64
	for i, h := range hops {
		if h.Node != wantOrder[i] {
			t.Errorf("hop %d = %q, want %q", i, h.Node, wantOrder[i])
		}
		if h.ArriveNs == 0 || h.DepartNs == 0 {
			t.Errorf("hop %d has zero timestamps: %+v", i, h)
		}
		if h.DepartNs < h.ArriveNs {
			t.Errorf("hop %d departs before it arrives: %+v", i, h)
		}
		if h.ArriveNs < prevDepart {
			t.Errorf("hop %d arrives before hop %d departed", i, i-1)
		}
		if h.Batch != 32 {
			t.Errorf("hop %d batch = %d, want 32", i, h.Batch)
		}
		prevDepart = h.DepartNs
	}
}

func TestTraceDepartWithoutHops(t *testing.T) {
	var now LazyNow
	TraceDepart(&Packet{Trace: NewTrace(1)}, &now) // must not panic
	TraceDepart(&Packet{}, &now)
}

// TestTraceStampZeroAllocUntraced is the sampling=0 guarantee: stamping
// a burst of untraced packets performs zero allocations (and, via
// LazyNow, zero clock reads — unobservable here, but the nil-check
// early return covers both).
func TestTraceStampZeroAllocUntraced(t *testing.T) {
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = &Packet{}
	}
	allocs := testing.AllocsPerRun(100, func() {
		var arrive, depart LazyNow
		for _, p := range pkts {
			TraceArrive(p, "fwd:f1", &arrive, len(pkts))
		}
		for _, p := range pkts {
			TraceDepart(p, &depart)
		}
	})
	if allocs != 0 {
		t.Errorf("stamping untraced burst allocates %.1f/run, want 0", allocs)
	}
}

func TestPoolPutClearsTrace(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Trace = NewTrace(7)
	pool.Put(p)
	q := pool.Get()
	if q.Trace != nil {
		t.Error("recycled packet leaked a previous trace")
	}
}
