package packet

import (
	"sync"
	"sync/atomic"

	"switchboard/internal/labels"
)

// DefaultBatchSize is the data plane's default burst size: the number of
// messages a batched receive loop drains per wakeup and the number of
// packets a traffic source coalesces per send. 32 matches the common
// DPDK rx/tx burst size the paper's forwarder is built around.
const DefaultBatchSize = 32

// Pool recycles Packet structs so the data plane allocates once per
// in-flight packet instead of once per packet per hop. Ownership is
// strict hand-off: a sender must not touch a packet after sending it,
// and only the final owner (a sink, or a hop that drops the packet) may
// Put it back.
type Pool struct {
	p      sync.Pool
	allocs atomic.Uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	pl := &Pool{}
	pl.p.New = func() any {
		pl.allocs.Add(1)
		return &Packet{}
	}
	return pl
}

// Get returns a packet with zeroed header fields and an empty payload.
// The payload slice may retain capacity from a previous use; append to
// it rather than assigning a fresh slice to benefit from recycling.
func (pl *Pool) Get() *Packet {
	return pl.p.Get().(*Packet)
}

// Put resets the packet and returns it to the pool. The label stack and
// flow key are cleared and the payload is truncated (capacity retained),
// so a recycled packet can never leak the previous flow's state.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	p.Labels = labels.Stack{}
	p.Labeled = false
	p.Key = FlowKey{}
	p.Payload = p.Payload[:0]
	p.Trace = nil
	pl.p.Put(p)
}

// Allocs reports how many packets the pool has ever allocated; the gap
// between packets processed and Allocs is the recycling win.
func (pl *Pool) Allocs() uint64 { return pl.allocs.Load() }

// Batch is the unit of work on the batched data path: a burst of packets
// travelling together between two endpoints, with per-entry wire sizes.
// A batch is sent as a single simnet message (one inbox operation per
// burst, like a DPDK tx burst), while WAN loss still applies per entry.
//
// Ownership follows the packets: sending a batch hands every packet and
// the batch container to the receiver. Receivers that keep the packets
// return just the container with PutBatch; sinks call ReleasePackets
// first to recycle the packets too.
type Batch struct {
	// Pkts are the packets, in send order.
	Pkts []*Packet
	// Sizes holds the wire size of each entry, aligned with Pkts.
	Sizes []int
	// Pool, when set, receives packets dropped in transit (per-entry WAN
	// loss) and packets recycled by ReleasePackets.
	Pool *Pool
}

var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// GetBatch returns an empty batch container from the shared pool.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// PutBatch resets the container and returns it to the shared pool. It
// does not touch the packets; use ReleasePackets first when the packets
// themselves are done.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// Append adds a packet with its wire size.
func (b *Batch) Append(p *Packet, size int) {
	b.Pkts = append(b.Pkts, p)
	b.Sizes = append(b.Sizes, size)
}

// Len returns the number of entries.
func (b *Batch) Len() int { return len(b.Pkts) }

// TotalSize returns the summed wire size of all entries — the batch's
// size on an emulated link (a burst serializes back-to-back).
func (b *Batch) TotalSize() int {
	total := 0
	for _, s := range b.Sizes {
		total += s
	}
	return total
}

// Reset empties the batch, keeping slice capacity. Packet pointers are
// cleared so a pooled container never pins packets.
func (b *Batch) Reset() {
	clear(b.Pkts)
	b.Pkts = b.Pkts[:0]
	b.Sizes = b.Sizes[:0]
	b.Pool = nil
}

// Filter removes entries for which keep returns false, preserving order
// and recycling removed packets into the batch's pool. It operates in
// place: payloads are not copied or re-boxed.
func (b *Batch) Filter(keep func(i int) bool) {
	n := 0
	for i := range b.Pkts {
		if keep(i) {
			b.Pkts[n] = b.Pkts[i]
			b.Sizes[n] = b.Sizes[i]
			n++
			continue
		}
		if b.Pool != nil {
			b.Pool.Put(b.Pkts[i])
		}
	}
	clear(b.Pkts[n:])
	b.Pkts = b.Pkts[:n]
	b.Sizes = b.Sizes[:n]
}

// ReleasePackets recycles every packet into the batch's pool (no-op when
// the batch has none) and clears the entries.
func (b *Batch) ReleasePackets() {
	if b.Pool != nil {
		for _, p := range b.Pkts {
			b.Pool.Put(p)
		}
	}
	clear(b.Pkts)
	b.Pkts = b.Pkts[:0]
	b.Sizes = b.Sizes[:0]
}
