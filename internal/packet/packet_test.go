package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"switchboard/internal/labels"
)

func sampleKey() FlowKey {
	return FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80101, SrcPort: 12345, DstPort: 80, Proto: 6}
}

func TestReverse(t *testing.T) {
	k := sampleKey()
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstIP != k.SrcIP || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse != identity")
	}
}

func TestCanonical(t *testing.T) {
	k := sampleKey()
	c1, _ := k.Canonical()
	c2, _ := k.Reverse().Canonical()
	if c1 != c2 {
		t.Errorf("canonical differs across directions: %+v vs %+v", c1, c2)
	}
}

func TestCanonicalProperty(t *testing.T) {
	f := func(sip, dip uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: proto}
		c1, _ := k.Canonical()
		c2, _ := k.Reverse().Canonical()
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDiffersAcrossFlows(t *testing.T) {
	a := sampleKey()
	b := a
	b.SrcPort++
	if a.Hash() == b.Hash() {
		t.Error("hash collision on adjacent ports (suspicious)")
	}
	if a.Hash() != sampleKey().Hash() {
		t.Error("hash not deterministic")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := &Packet{
		Labels:  labels.Stack{Chain: 100, Egress: 7},
		Labeled: true,
		Key:     sampleKey(),
		Payload: []byte("hello"),
	}
	buf, err := p.MarshalAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != p.Labels || got.Labeled != p.Labeled || got.Key != p.Key {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload mismatch: %q", got.Payload)
	}
}

func TestMarshalUnlabeled(t *testing.T) {
	p := &Packet{Key: sampleKey()}
	buf, err := p.MarshalAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Labeled {
		t.Error("Labeled flag set after round trip of unlabeled packet")
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %q, want empty", got.Payload)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, headerSize-1)); err != ErrShortPacket {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestMarshalAppendReusesBuffer(t *testing.T) {
	p := &Packet{Key: sampleKey(), Payload: []byte("x")}
	buf := make([]byte, 0, 256)
	out, err := p.MarshalAppend(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("MarshalAppend reallocated despite sufficient capacity")
	}
}

func TestFlowKeyString(t *testing.T) {
	got := sampleKey().String()
	want := "10.0.0.1:12345->192.168.1.1:80/6"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
