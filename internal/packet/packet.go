// Package packet defines the data-plane packet representation shared by
// edges, forwarders, and VNFs: an IP 5-tuple flow key, the Switchboard
// label stack, and a compact wire encoding used when packets cross
// simulated tunnels.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"switchboard/internal/labels"
)

// FlowKey is the connection 5-tuple used for flow-affinity lookups.
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the key of the same connection in the opposite
// direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
		Proto:   k.Proto,
	}
}

// Canonical returns the direction-independent form of the key (the lesser
// endpoint first) and whether k was already canonical. Forwarders use it
// to key one flow-table entry per connection regardless of direction.
func (k FlowKey) Canonical() (FlowKey, bool) {
	if k.less() {
		return k, true
	}
	return k.Reverse(), false
}

func (k FlowKey) less() bool {
	if k.SrcIP != k.DstIP {
		return k.SrcIP < k.DstIP
	}
	return k.SrcPort <= k.DstPort
}

// Hash returns a 64-bit FNV-1a hash of the key, used for flow-table
// sharding.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix(byte(k.SrcIP))
	mix(byte(k.SrcIP >> 8))
	mix(byte(k.SrcIP >> 16))
	mix(byte(k.SrcIP >> 24))
	mix(byte(k.DstIP))
	mix(byte(k.DstIP >> 8))
	mix(byte(k.DstIP >> 16))
	mix(byte(k.DstIP >> 24))
	mix(byte(k.SrcPort))
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.DstPort))
	mix(byte(k.DstPort >> 8))
	mix(k.Proto)
	return h
}

// SteerHash returns a direction-independent hash of the connection:
// both directions of one flow produce the same value. Runner pools use
// it for RSS-style core steering (core = SteerHash % cores) so every
// packet of a connection — forward and return path — lands on the same
// core, preserving affinity and NAT ordering without cross-core locks.
// Flow-table partitions select by the same value, so a steered core
// only ever touches its own partition.
func (k FlowKey) SteerHash() uint64 {
	c, _ := k.Canonical()
	h := c.Hash()
	// Core selection is modulo a small core count, so it reads the low
	// bits — exactly where FNV-1a disperses poorly for structured,
	// sequential keys. A 64-bit avalanche finalizer (murmur3 fmix64)
	// spreads every input bit into the low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// String renders "src:port->dst:port/proto" with IPs in dotted quads.
func (k FlowKey) String() string {
	ip := func(v uint32) string {
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return fmt.Sprintf("%s:%d->%s:%d/%d", ip(k.SrcIP), k.SrcPort, ip(k.DstIP), k.DstPort, k.Proto)
}

// Prefix is an IPv4 prefix used for header-field matching by edge
// classifiers and firewall rules.
type Prefix struct {
	IP   uint32
	Bits int
}

// Contains reports whether ip is within the prefix. A zero-bit prefix
// matches everything.
func (p Prefix) Contains(ip uint32) bool {
	if p.Bits <= 0 {
		return true
	}
	if p.Bits >= 32 {
		return ip == p.IP
	}
	mask := ^uint32(0) << (32 - p.Bits)
	return ip&mask == p.IP&mask
}

// Packet is a data-plane packet inside the Switchboard overlay. A
// packet is owned by exactly one goroutine at a time (strict hand-off
// along the chain), so its fields need no locking.
type Packet struct {
	// Labels is the chain/egress label stack. Labeled is false once a
	// forwarder has stripped labels for a label-unaware VNF.
	Labels  labels.Stack
	Labeled bool
	// Ann is the per-flow steering annotation carried in the chain
	// entry's class bits (labels.AnnMigrated after a live handoff). It is
	// metadata about the flow, not part of the rule key, so it stays off
	// the Stack.
	Ann uint8
	// Key is the connection 5-tuple.
	Key FlowKey
	// Payload is the application bytes (may be nil in benchmarks).
	Payload []byte
	// Trace is the sampled path annotation; nil for the (vast) majority
	// of packets that are not traced. It travels with the packet but is
	// not part of the wire encoding (see trace.go).
	Trace *Trace
}

// wire layout: 1 flag byte | 8 label bytes | 13 key bytes | payload.
const headerSize = 1 + labels.HeaderSize + 13

// ErrShortPacket is returned when unmarshalling fewer bytes than a header.
var ErrShortPacket = errors.New("packet: short packet")

// MarshalAppend encodes the packet onto buf and returns the extended
// slice. The encoding is used across simulated tunnels and by the wire
// forwarder daemon.
func (p *Packet) MarshalAppend(buf []byte) ([]byte, error) {
	var flags byte
	if p.Labeled {
		flags |= 1
	}
	buf = append(buf, flags)
	var lb [labels.HeaderSize]byte
	if _, err := p.Labels.EncodeAnnotated(lb[:], p.Ann); err != nil {
		return nil, err
	}
	buf = append(buf, lb[:]...)
	var kb [13]byte
	binary.BigEndian.PutUint32(kb[0:4], p.Key.SrcIP)
	binary.BigEndian.PutUint32(kb[4:8], p.Key.DstIP)
	binary.BigEndian.PutUint16(kb[8:10], p.Key.SrcPort)
	binary.BigEndian.PutUint16(kb[10:12], p.Key.DstPort)
	kb[12] = p.Key.Proto
	buf = append(buf, kb[:]...)
	buf = append(buf, p.Payload...)
	return buf, nil
}

// Unmarshal decodes a packet from buf. The payload aliases buf.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < headerSize {
		return nil, ErrShortPacket
	}
	p := &Packet{Labeled: buf[0]&1 != 0}
	st, ann, err := labels.DecodeAnnotated(buf[1 : 1+labels.HeaderSize])
	if err != nil {
		return nil, err
	}
	p.Labels = st
	p.Ann = ann
	kb := buf[1+labels.HeaderSize : headerSize]
	p.Key = FlowKey{
		SrcIP:   binary.BigEndian.Uint32(kb[0:4]),
		DstIP:   binary.BigEndian.Uint32(kb[4:8]),
		SrcPort: binary.BigEndian.Uint16(kb[8:10]),
		DstPort: binary.BigEndian.Uint16(kb[10:12]),
		Proto:   kb[12],
	}
	p.Payload = buf[headerSize:]
	return p, nil
}
