package packet

import (
	"testing"

	"switchboard/internal/labels"
)

func TestPoolRoundTripResetsPacket(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Labels = labels.Stack{Chain: 7, Egress: 3}
	p.Labeled = true
	p.Key = FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	p.Payload = append(p.Payload, 0xAA, 0xBB, 0xCC)
	pool.Put(p)

	q := pool.Get()
	if q.Labels != (labels.Stack{}) {
		t.Errorf("recycled packet kept label stack %+v", q.Labels)
	}
	if q.Labeled {
		t.Error("recycled packet still marked labeled")
	}
	if q.Key != (FlowKey{}) {
		t.Errorf("recycled packet kept flow key %v", q.Key)
	}
	if len(q.Payload) != 0 {
		t.Errorf("recycled packet kept %d payload bytes", len(q.Payload))
	}
}

// A recycled packet's label stack must not alias the previous owner's:
// mutating the new packet's labels must not be visible to anyone holding
// the old values. labels.Stack is a value type, so this holds by
// construction; the test pins the invariant against future refactors.
func TestPoolRoundTripNoAliasedLabels(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Labels = labels.Stack{Chain: 1, Egress: 1}
	saved := p.Labels
	pool.Put(p)

	q := pool.Get() // likely the same struct back
	q.Labels = labels.Stack{Chain: 99, Egress: 99}
	if saved != (labels.Stack{Chain: 1, Egress: 1}) {
		t.Errorf("old stack mutated through recycled packet: %+v", saved)
	}
}

func TestPoolAllocsCountsFreshPackets(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	q := pool.Get()
	if got := pool.Allocs(); got != 2 {
		t.Fatalf("Allocs after two Gets = %d, want 2", got)
	}
	pool.Put(p)
	pool.Put(q)
	// Recycled Gets normally allocate nothing; sync.Pool is allowed to
	// shed items (it does so deliberately under the race detector), so
	// only the upper bound is exact.
	_, _ = pool.Get(), pool.Get()
	if got := pool.Allocs(); got > 4 {
		t.Errorf("Allocs after recycled Gets = %d, want <= 4", got)
	}
}

func TestBatchAppendLenTotalSize(t *testing.T) {
	b := GetBatch()
	defer PutBatch(b)
	b.Append(&Packet{}, 100)
	b.Append(&Packet{}, 250)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.TotalSize() != 350 {
		t.Errorf("TotalSize = %d, want 350", b.TotalSize())
	}
}

func TestBatchFilterKeepsOrderAndRecycles(t *testing.T) {
	pool := NewPool()
	b := GetBatch()
	defer PutBatch(b)
	b.Pool = pool
	var pkts [4]*Packet
	for i := range pkts {
		pkts[i] = pool.Get()
		pkts[i].Key.SrcPort = uint16(i)
		b.Append(pkts[i], 10*(i+1))
	}
	b.Filter(func(i int) bool { return i%2 == 0 }) // keep 0 and 2

	if b.Len() != 2 {
		t.Fatalf("Len after filter = %d, want 2", b.Len())
	}
	if b.Pkts[0] != pkts[0] || b.Pkts[1] != pkts[2] {
		t.Error("filter did not preserve entry order")
	}
	if b.Sizes[0] != 10 || b.Sizes[1] != 30 {
		t.Errorf("sizes misaligned after filter: %v", b.Sizes[:2])
	}
	// Dropped packets were handed to Pool.Put, whose reset is observable
	// regardless of whether sync.Pool keeps the item.
	for _, i := range []int{1, 3} {
		if pkts[i].Key != (FlowKey{}) {
			t.Errorf("dropped packet %d was not recycled (key %v survived)", i, pkts[i].Key)
		}
	}
	// Kept packets are untouched.
	if pkts[0].Key.SrcPort != 0 || pkts[2].Key.SrcPort != 2 {
		t.Errorf("kept packets mutated: %v %v", pkts[0].Key, pkts[2].Key)
	}
}

func TestBatchResetClearsPacketRefs(t *testing.T) {
	b := GetBatch()
	b.Append(&Packet{}, 1)
	b.Pool = NewPool()
	b.Reset()
	if b.Len() != 0 || b.Pool != nil {
		t.Fatalf("Reset left state: len=%d pool=%v", b.Len(), b.Pool)
	}
	// The backing array must not pin the old packet.
	if cap(b.Pkts) > 0 && b.Pkts[:1][0] != nil {
		t.Error("Reset left a packet pointer in the backing array")
	}
	PutBatch(b)
}

func TestReleasePacketsRecyclesAll(t *testing.T) {
	pool := NewPool()
	b := GetBatch()
	b.Pool = pool
	var pkts [3]*Packet
	for i := range pkts {
		pkts[i] = pool.Get()
		pkts[i].Key.SrcPort = uint16(100 + i)
		b.Append(pkts[i], 1)
	}
	b.ReleasePackets()
	if b.Len() != 0 {
		t.Fatalf("Len after release = %d, want 0", b.Len())
	}
	for i, p := range pkts {
		if p.Key != (FlowKey{}) {
			t.Errorf("packet %d was not recycled (key %v survived release)", i, p.Key)
		}
	}
	PutBatch(b)
}
