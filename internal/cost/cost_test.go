package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUtilizationZero(t *testing.T) {
	if got := Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v, want 0", got)
	}
	if got := Utilization(-1); got != 0 {
		t.Errorf("Utilization(-1) = %v, want 0", got)
	}
}

func TestUtilizationFirstSegment(t *testing.T) {
	// Below 1/3 the slope is 1, so cost == u.
	if got := Utilization(0.2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Utilization(0.2) = %v, want 0.2", got)
	}
}

func TestUtilizationKnownValues(t *testing.T) {
	// Cost at 2/3 = 1/3*1 + 1/3*3 = 4/3.
	want := 1.0/3.0 + 3.0/3.0
	if got := Utilization(2.0 / 3.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization(2/3) = %v, want %v", got, want)
	}
	// Cost at 1.0 = 4/3 + (9/10-2/3)*10 + (1-9/10)*70 = 4/3 + 7/3 + 7.
	want = 4.0/3.0 + (9.0/10.0-2.0/3.0)*10 + (1-9.0/10.0)*70
	if got := Utilization(1.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization(1) = %v, want %v", got, want)
	}
}

func TestUtilizationMonotoneAndConvex(t *testing.T) {
	prev := 0.0
	prevSlope := 0.0
	for u := 0.01; u < 2.0; u += 0.01 {
		c := Utilization(u)
		if c < prev {
			t.Fatalf("Utilization not monotone at u=%v: %v < %v", u, c, prev)
		}
		slope := (c - prev) / 0.01
		if slope+1e-6 < prevSlope {
			t.Fatalf("Utilization not convex at u=%v: slope %v < %v", u, slope, prevSlope)
		}
		prev, prevSlope = c, slope
	}
}

func TestUtilizationSteepAboveHalf(t *testing.T) {
	// The paper: "increases exponentially with utilization at values
	// above 0.5". Check the marginal cost at 0.95 dwarfs that at 0.4.
	low := Utilization(0.45) - Utilization(0.40)
	high := Utilization(1.0) - Utilization(0.95)
	if high < 10*low {
		t.Errorf("cost not steep above 0.5: Δhigh=%v Δlow=%v", high, low)
	}
}

func TestMarginal(t *testing.T) {
	tests := []struct {
		u    float64
		want float64
	}{
		{0, 1}, {0.3, 1}, {0.34, 3}, {0.7, 10}, {0.95, 70}, {1.05, 500}, {1.5, 5000},
	}
	for _, tt := range tests {
		if got := Marginal(tt.u); got != tt.want {
			t.Errorf("Marginal(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func TestLoad(t *testing.T) {
	if got := Load(0, 10); got != 0 {
		t.Errorf("Load(0,10) = %v, want 0", got)
	}
	if got, want := Load(5, 10), Utilization(0.5); got != want {
		t.Errorf("Load(5,10) = %v, want %v", got, want)
	}
	// Zero capacity: finite overload cost.
	got := Load(1, 0)
	if math.IsInf(got, 1) || got <= Utilization(1.1) {
		t.Errorf("Load(1,0) = %v, want finite overload cost > Utilization(1.1)", got)
	}
}

// Property: Utilization is continuous (small input deltas give small
// output deltas, bounded by the max slope).
func TestUtilizationLipschitz(t *testing.T) {
	f := func(a uint16) bool {
		u := float64(a) / 10000.0 // up to ~6.5
		delta := 1e-6
		d := Utilization(u+delta) - Utilization(u)
		return d >= 0 && d <= 5000*delta+1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
