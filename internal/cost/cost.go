// Package cost implements the piecewise-linear convex utilization cost
// used by Switchboard's dynamic-programming traffic engineering (Section
// 4.4 of the paper). The function follows Fortz & Thorup's OSPF
// traffic-engineering cost [INFOCOM'00]: cheap while a resource is lightly
// used and increasing steeply — roughly exponentially — once utilization
// passes 1/2, so that routes avoid hot links and hot VNF sites long before
// they saturate.
package cost

// breakpoint is one linear segment of the convex cost: for utilization at
// or above U the marginal cost per unit of utilization is Slope.
type breakpoint struct {
	U     float64
	Slope float64
}

// fortzThorup are the classic breakpoints. Slopes grow ~exponentially
// above 0.5 utilization, and the two final segments punish overload
// (utilization beyond capacity) severely but finitely, which lets the DP
// still rank overloaded options instead of treating them all as +Inf.
var fortzThorup = []breakpoint{
	{0.0, 1},
	{1.0 / 3.0, 3},
	{2.0 / 3.0, 10},
	{9.0 / 10.0, 70},
	{1.0, 500},
	{11.0 / 10.0, 5000},
}

// Utilization returns the convex cost of running a resource at utilization
// u (load/capacity). The function is continuous, piecewise linear,
// increasing, and convex, with Utilization(0) == 0.
func Utilization(u float64) float64 {
	if u <= 0 {
		return 0
	}
	total := 0.0
	for i, bp := range fortzThorup {
		hi := u
		if i+1 < len(fortzThorup) && fortzThorup[i+1].U < u {
			hi = fortzThorup[i+1].U
		}
		if hi <= bp.U {
			break
		}
		total += (hi - bp.U) * bp.Slope
	}
	return total
}

// Marginal returns the marginal cost (the slope) at utilization u.
func Marginal(u float64) float64 {
	if u < 0 {
		u = 0
	}
	slope := fortzThorup[0].Slope
	for _, bp := range fortzThorup[1:] {
		if u >= bp.U {
			slope = bp.Slope
		}
	}
	return slope
}

// Load is a convenience wrapper: cost of placing `load` on a resource with
// the given capacity. A non-positive capacity is treated as saturated and
// returns the cost at utilization 2 — the overload regime — scaled by the
// load, so zero-capacity resources are strongly but finitely discouraged.
func Load(load, capacity float64) float64 {
	if load <= 0 {
		return 0
	}
	if capacity <= 0 {
		return Utilization(2)
	}
	return Utilization(load / capacity)
}
