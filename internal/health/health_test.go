package health

import (
	"math"
	"runtime"
	rm "runtime/metrics"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/testutil"
)

func TestVitalsSample(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle and pause sample
	v := NewVitals(time.Hour)
	v.Sample()
	if v.HeapInuse() == 0 {
		t.Error("heap in-use sampled as 0")
	}
	if v.Goroutines() < 1 {
		t.Errorf("goroutines sampled as %d", v.Goroutines())
	}
	if v.gcCycles.Load() == 0 {
		t.Error("gc cycles sampled as 0 after an explicit GC")
	}
	if v.gcPauseP99Ns.Load() <= 0 {
		t.Error("gc pause p99 not sampled")
	}
}

func TestVitalsRegisterMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	v := NewVitals(0)
	v.RegisterMetrics(reg)
	s := reg.Snapshot()
	for _, g := range []string{
		"runtime.heap_inuse_bytes", "runtime.heap_released_bytes",
		"runtime.stack_inuse_bytes", "runtime.goroutines",
		"runtime.gc_pause_p99_ns", "runtime.sched_latency_p99_ns",
	} {
		if _, ok := s.Gauges[g]; !ok {
			t.Errorf("gauge %s missing from snapshot", g)
		}
	}
	for _, c := range []string{"runtime.gc_cycles", "health.vitals_samples"} {
		if _, ok := s.Counters[c]; !ok {
			t.Errorf("counter %s missing from snapshot", c)
		}
	}
	if s.Gauges["runtime.heap_inuse_bytes"] <= 0 {
		t.Error("heap gauge reads 0")
	}
}

func TestVitalsStartStop(t *testing.T) {
	testutil.NoLeaks(t)
	v := NewVitals(time.Millisecond)
	stop := v.Start()
	before := v.sampleCount.Load()
	if !testutil.Poll(time.Second, func() bool { return v.sampleCount.Load() > before }) {
		t.Fatal("sampler never ticked")
	}
	stop()
	stop() // idempotent
}

func TestHistPercentile(t *testing.T) {
	h := &rm.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histPercentile(h, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (bucket upper bound)", got)
	}
	if got := histPercentile(h, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3", got)
	}
	// +Inf final bucket falls back to the finite lower bound.
	hinf := &rm.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if got := histPercentile(hinf, 0.99); got != 1 {
		t.Errorf("p99 with +Inf bucket = %v, want 1", got)
	}
	if got := histPercentile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram p99 = %v, want 0", got)
	}
	if got := histPercentile(&rm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
}

func TestWatchdogStallAndRecover(t *testing.T) {
	rec := obs.NewRecorder(64, 64, nil)
	var stalled atomic.Int32
	w := NewWatchdog(WatchdogConfig{
		Recorder: rec,
		OnStall:  func(string, time.Duration) { stalled.Add(1) },
	})
	reg := metrics.NewRegistry()
	w.RegisterMetrics(reg)

	hb := w.Register("bus", 50*time.Millisecond)
	now := time.Now()

	w.Check(now) // fresh heartbeat: healthy
	if w.Stalls() != 0 || w.StalledNow() != 0 {
		t.Fatal("fresh heartbeat reported stalled")
	}

	w.Check(now.Add(200 * time.Millisecond)) // silent past threshold
	if w.Stalls() != 1 || w.StalledNow() != 1 || !hb.Stalled() {
		t.Fatalf("stall not detected: stalls=%d now=%d", w.Stalls(), w.StalledNow())
	}
	if stalled.Load() != 1 {
		t.Fatalf("OnStall called %d times, want 1", stalled.Load())
	}
	w.Check(now.Add(300 * time.Millisecond)) // still silent: no re-fire
	if w.Stalls() != 1 {
		t.Fatalf("stall re-fired: stalls=%d", w.Stalls())
	}

	hb.Beat()
	w.Check(time.Now())
	if hb.Stalled() || w.StalledNow() != 0 {
		t.Fatal("recovery not detected after beat")
	}

	var sawStall, sawRecover bool
	for _, e := range rec.Events() {
		if strings.Contains(e.Name, "bus stalled") {
			sawStall = true
		}
		if strings.Contains(e.Name, "bus recovered") {
			sawRecover = true
		}
	}
	if !sawStall || !sawRecover {
		t.Fatalf("obs events missing: stall=%v recover=%v (%v)", sawStall, sawRecover, rec.Events())
	}
	if s := reg.Snapshot(); s.Counters["health.stalls"] != 1 || s.Gauges["health.stalled"] != 0 {
		t.Fatalf("metrics wrong: stalls=%d stalled=%v", s.Counters["health.stalls"], s.Gauges["health.stalled"])
	}
}

func TestWatchdogStatusSorted(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	w.Register("zeta", time.Second)
	w.Register("alpha", time.Second)
	st := w.Status(time.Now())
	if len(st) != 2 || st[0].Name != "alpha" || st[1].Name != "zeta" {
		t.Fatalf("status not sorted by name: %+v", st)
	}
}

func TestNilHeartbeat(t *testing.T) {
	var hb *Heartbeat
	hb.Beat() // must not panic
	hb.Func()()
	if hb.Stalled() {
		t.Fatal("nil heartbeat stalled")
	}
}

func TestLeakDetectorGoroutines(t *testing.T) {
	rec := obs.NewRecorder(64, 64, nil)
	var verdicts []Verdict
	d := NewLeakDetector(LeakConfig{
		GoroutineSlack: 2,
		Persist:        2,
		Recorder:       rec,
		OnVerdict:      func(v Verdict) { verdicts = append(verdicts, v) },
	})

	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-stop }()
	}
	// Let them all park so NumGoroutine sees them.
	if !testutil.Poll(time.Second, func() bool {
		return runtime.NumGoroutine() >= d.Baseline()+8
	}) {
		t.Fatal("spawned goroutines never showed up")
	}

	now := time.Now()
	if raised := d.Check(now); len(raised) != 0 {
		t.Fatal("verdict raised before persist threshold")
	}
	raised := d.Check(now.Add(time.Second))
	if len(raised) != 1 || raised[0].Kind != LeakGoroutines {
		t.Fatalf("expected goroutine verdict on 2nd consecutive check, got %+v", raised)
	}
	if len(verdicts) != 1 {
		t.Fatalf("OnVerdict called %d times, want 1", len(verdicts))
	}
	if got := d.Active(); len(got) != 1 || got[0] != LeakGoroutines {
		t.Fatalf("Active() = %v", got)
	}

	close(stop)
	if !testutil.Poll(time.Second, func() bool {
		d.Check(time.Now())
		return len(d.Active()) == 0
	}) {
		t.Fatal("verdict never cleared after goroutines exited")
	}
	if d.VerdictsTotal() != 1 {
		t.Fatalf("VerdictsTotal = %d, want 1", d.VerdictsTotal())
	}
}

func TestLeakDetectorHeapTrend(t *testing.T) {
	reg := metrics.NewRegistry()
	var heap atomic.Uint64
	reg.GaugeFunc("runtime.heap_inuse_bytes", func() float64 { return float64(heap.Load()) })
	hist := metrics.NewHistory(reg, time.Second, time.Minute)

	d := NewLeakDetector(LeakConfig{
		History:        hist,
		Window:         time.Minute,
		MinPoints:      4,
		MaxHeapSlope:   1 << 20, // 1 MiB/s
		Persist:        2,
		GoroutineSlack: 1 << 20, // effectively disable the goroutine detector
	})

	// Grow the "heap" 8 MiB per sample, ~1 ms apart: slope far above
	// threshold.
	for i := 1; i <= 6; i++ {
		heap.Store(uint64(i) * 8 << 20)
		hist.Sample()
		time.Sleep(2 * time.Millisecond)
	}
	now := time.Now()
	if raised := d.Check(now); len(raised) != 0 {
		t.Fatal("heap verdict before persist threshold")
	}
	raised := d.Check(now.Add(time.Second))
	if len(raised) != 1 || raised[0].Kind != LeakHeap {
		t.Fatalf("expected heap verdict, got %+v (slope %v)", raised, d.HeapSlope())
	}
	if d.HeapSlope() <= 1<<20 {
		t.Fatalf("HeapSlope = %v, want > threshold", d.HeapSlope())
	}

	// Plateau: fresh samples flat → trend collapses → verdict clears.
	for i := 0; i < 8; i++ {
		heap.Store(48<<20 + uint64(i)) // tiny wiggle so dedup retains points
		hist.Sample()
		time.Sleep(2 * time.Millisecond)
	}
	// Restrict the window to the plateau samples.
	d.cfg.Window = 40 * time.Millisecond
	if !testutil.Poll(time.Second, func() bool {
		d.Check(time.Now())
		return len(d.Active()) == 0
	}) {
		t.Fatalf("heap verdict never cleared on plateau (slope %v)", d.HeapSlope())
	}
}

func TestLeakDetectorMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	d := NewLeakDetector(LeakConfig{})
	d.RegisterMetrics(reg)
	s := reg.Snapshot()
	if _, ok := s.Counters["health.leak_verdicts"]; !ok {
		t.Error("health.leak_verdicts missing")
	}
	if _, ok := s.Gauges["health.heap_slope_bps"]; !ok {
		t.Error("health.heap_slope_bps missing")
	}
	if _, ok := s.Gauges["health.leak_active"]; !ok {
		t.Error("health.leak_active missing")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("test.packets")
	rec := obs.NewRecorder(64, 64, reg)
	hist := metrics.NewHistory(reg, time.Second, time.Minute)

	rec.Log("ancient event")
	sp := rec.Start("old.span", "", 0)
	sp.End()
	c.Inc()
	hist.Sample()
	time.Sleep(120 * time.Millisecond)

	f := NewFlightRecorder(FlightConfig{
		Window:      100 * time.Millisecond,
		MinInterval: 50 * time.Millisecond,
		Registry:    reg,
		History:     hist,
		Recorder:    rec,
	})
	rec.Log("trigger event")
	sp2 := rec.Start("fresh.span", "", 0)
	sp2.End()
	c.Inc()
	hist.Sample()

	d, ok := f.Trigger("watchdog-stall", "bus silent 1.2s")
	if !ok || d == nil {
		t.Fatal("trigger rejected")
	}
	var sawTrigger, sawAncient bool
	for _, e := range d.Events {
		if e.Name == "trigger event" {
			sawTrigger = true
		}
		if e.Name == "ancient event" {
			sawAncient = true
		}
	}
	if !sawTrigger {
		t.Fatal("dump missing the in-window trigger event")
	}
	if sawAncient {
		t.Fatal("dump includes an event older than the window")
	}
	var sawFresh, sawOld bool
	for _, s := range d.Spans {
		if s.Name == "fresh.span" {
			sawFresh = true
		}
		if s.Name == "old.span" {
			sawOld = true
		}
	}
	if !sawFresh || sawOld {
		t.Fatalf("span window filter wrong: fresh=%v old=%v", sawFresh, sawOld)
	}
	if d.Metrics == nil || d.Metrics.Counters["test.packets"] != 2 {
		t.Fatal("dump missing the point-in-time metrics snapshot")
	}
	if len(d.History) == 0 {
		t.Fatal("dump missing history points")
	}
	if len(d.HeapProfile) == 0 || d.GoroutineStacks == "" {
		t.Fatal("dump missing pprof profiles")
	}
	if d.Goroutines < 1 {
		t.Fatal("dump missing goroutine count")
	}

	// Debounce: an immediate second trigger is dropped…
	if _, ok := f.Trigger("http-poke", ""); ok {
		t.Fatal("debounce did not drop an immediate second trigger")
	}
	// …unless the recorder is re-armed…
	f.Rearm()
	if _, ok := f.Trigger("http-poke", ""); !ok {
		t.Fatal("trigger after Rearm rejected")
	}
	// …and accepted again after MinInterval.
	time.Sleep(60 * time.Millisecond)
	d2, ok := f.Trigger("http-poke", "")
	if !ok {
		t.Fatal("trigger after debounce window rejected")
	}
	if d2.ID == d.ID {
		t.Fatal("dump IDs not unique")
	}

	// Retrieval by ID and list view.
	got, ok := f.Dump(d.ID)
	if !ok || got.Reason != "watchdog-stall" {
		t.Fatalf("Dump(%d) = %+v, %v", d.ID, got, ok)
	}
	infos := f.Dumps()
	if len(infos) != 3 || infos[0].ID != d.ID || !infos[0].Profiles {
		t.Fatalf("Dumps() = %+v", infos)
	}
	if f.DumpsTotal() != 3 {
		t.Fatalf("DumpsTotal = %d, want 3", f.DumpsTotal())
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{
		MaxDumps:        2,
		MinInterval:     time.Nanosecond,
		DisableProfiles: true,
	})
	for i := 0; i < 4; i++ {
		time.Sleep(time.Millisecond)
		if _, ok := f.Trigger("poke", ""); !ok {
			t.Fatalf("trigger %d rejected", i)
		}
	}
	infos := f.Dumps()
	if len(infos) != 2 || infos[0].ID != 3 || infos[1].ID != 4 {
		t.Fatalf("eviction kept wrong dumps: %+v", infos)
	}
	if _, ok := f.Dump(1); ok {
		t.Fatal("evicted dump still retrievable")
	}
}

func TestHealthStatusAggregation(t *testing.T) {
	var nilH *Health
	if !nilH.Healthy(time.Now()) {
		t.Fatal("nil Health not healthy")
	}

	w := NewWatchdog(WatchdogConfig{})
	d := NewLeakDetector(LeakConfig{GoroutineSlack: 1 << 20})
	v := NewVitals(time.Hour)
	h := &Health{Vitals: v, Watchdog: w, Leaks: d}

	now := time.Now()
	st := h.Status(now)
	if !st.Healthy {
		t.Fatalf("healthy system reported unhealthy: %+v", st)
	}
	if st.Goroutines < 1 || st.HeapInuseBytes == 0 {
		t.Fatal("vitals missing from status")
	}

	// A stalled component flips the aggregate.
	w.Register("bus", 10*time.Millisecond)
	w.Check(now.Add(time.Second))
	st = h.Status(now.Add(time.Second))
	if st.Healthy {
		t.Fatal("stalled component did not flip Healthy")
	}
	if len(st.Components) != 1 || !st.Components[0].Stalled {
		t.Fatalf("components view wrong: %+v", st.Components)
	}
}

func TestHealthStartStop(t *testing.T) {
	testutil.NoLeaks(t)
	h := &Health{
		Vitals:   NewVitals(time.Millisecond),
		Watchdog: NewWatchdog(WatchdogConfig{Interval: time.Millisecond}),
		Leaks:    NewLeakDetector(LeakConfig{Interval: time.Millisecond, GoroutineSlack: 1 << 20}),
	}
	stop := h.Start()
	time.Sleep(10 * time.Millisecond)
	stop()
}
