package health

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
)

// Leak-detector defaults: a verdict needs sustained evidence — a heap
// slope over threshold (or a goroutine count over baseline+slack) on
// several consecutive checks — so GC sawtooth and transient scale-out
// don't page anyone.
const (
	DefaultLeakInterval   = time.Second
	DefaultLeakWindow     = 30 * time.Second
	DefaultLeakMinPoints  = 8
	DefaultMaxHeapSlope   = 4 << 20 // bytes/sec
	DefaultLeakPersist    = 3
	DefaultGoroutineSlack = 64
)

// LeakKind discriminates Verdict kinds.
type LeakKind string

// The two leak classes the detector watches.
const (
	LeakHeap       LeakKind = "heap"
	LeakGoroutines LeakKind = "goroutines"
)

// Verdict is one raised leak alert.
type Verdict struct {
	// Kind is what leaked: LeakHeap or LeakGoroutines.
	Kind LeakKind `json:"kind"`
	// RaisedAt is when the verdict fired.
	RaisedAt time.Time `json:"raised_at"`
	// Detail is a human-readable summary of the evidence.
	Detail string `json:"detail"`
	// SlopeBps is the fitted heap growth in bytes/second (heap kind).
	SlopeBps float64 `json:"slope_bps,omitempty"`
	// Goroutines and Baseline carry the observed count and the healthy
	// baseline (goroutine kind).
	Goroutines int `json:"goroutines,omitempty"`
	Baseline   int `json:"baseline,omitempty"`
}

// LeakConfig configures a LeakDetector.
type LeakConfig struct {
	// History is the sampled metric time series the heap trend is
	// fitted over. Nil disables the heap detector.
	History *metrics.History
	// HeapMetric names the heap gauge in History (default
	// "runtime.heap_inuse_bytes", the Vitals name).
	HeapMetric string
	// Window is the trend lookback (default DefaultLeakWindow).
	Window time.Duration
	// MinPoints is the minimum series length for a trustworthy fit
	// (default DefaultLeakMinPoints).
	MinPoints int
	// MaxHeapSlope is the sustained growth rate, in bytes/second, that
	// counts as leaking (default DefaultMaxHeapSlope).
	MaxHeapSlope float64
	// GoroutineSlack is how far above the baseline the goroutine count
	// may sit before counting as leaking (default DefaultGoroutineSlack).
	GoroutineSlack int
	// Persist is how many consecutive over-threshold checks raise a
	// verdict (default DefaultLeakPersist).
	Persist int
	// Interval is the check period once started (default
	// DefaultLeakInterval).
	Interval time.Duration
	// Recorder, when set, receives a standalone obs event per verdict
	// raise and clear.
	Recorder *obs.Recorder
	// OnVerdict, when set, is called (outside the detector's lock) for
	// each raised verdict — the flight-recorder trigger hook.
	OnVerdict func(Verdict)
}

// LeakDetector baselines the goroutine count and fits a linear heap
// trend over a metrics.History window, raising a Verdict when growth
// persists across consecutive checks. Verdicts clear automatically
// when the signal returns below threshold, so /healthz recovers
// without a restart.
type LeakDetector struct {
	cfg LeakConfig

	baseline atomic.Int64 // healthy goroutine count

	mu          sync.Mutex
	heapStreak  int
	goroStreak  int
	heapActive  bool
	goroActive  bool
	verdictsLog []Verdict // bounded

	verdictsTotal atomic.Uint64
	lastSlopeBits atomic.Uint64 // math.Float64bits of the last heap fit

	stopMu sync.Mutex
	stop   chan struct{}
}

// maxVerdictLog bounds the retained verdict history.
const maxVerdictLog = 64

// NewLeakDetector returns a detector whose goroutine baseline is the
// count at this instant; call Rebaseline after warmup to move it.
func NewLeakDetector(cfg LeakConfig) *LeakDetector {
	if cfg.HeapMetric == "" {
		cfg.HeapMetric = "runtime.heap_inuse_bytes"
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultLeakWindow
	}
	if cfg.MinPoints <= 0 {
		cfg.MinPoints = DefaultLeakMinPoints
	}
	if cfg.MaxHeapSlope <= 0 {
		cfg.MaxHeapSlope = DefaultMaxHeapSlope
	}
	if cfg.GoroutineSlack <= 0 {
		cfg.GoroutineSlack = DefaultGoroutineSlack
	}
	if cfg.Persist <= 0 {
		cfg.Persist = DefaultLeakPersist
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultLeakInterval
	}
	d := &LeakDetector{cfg: cfg}
	d.baseline.Store(int64(runtime.NumGoroutine()))
	return d
}

// Rebaseline re-snapshots the goroutine count as the healthy baseline —
// call once the system under watch has finished spinning up.
func (d *LeakDetector) Rebaseline() {
	d.baseline.Store(int64(runtime.NumGoroutine()))
}

// Baseline returns the current goroutine baseline.
func (d *LeakDetector) Baseline() int { return int(d.baseline.Load()) }

// HeapSlope returns the last fitted heap growth rate in bytes/second
// (0 before the first fit).
func (d *LeakDetector) HeapSlope() float64 {
	return math.Float64frombits(d.lastSlopeBits.Load())
}

// Check runs both detectors once against now and returns any verdicts
// raised by this pass. Exposed so tests and experiments can drive
// checks deterministically.
func (d *LeakDetector) Check(now time.Time) []Verdict {
	var raised []Verdict

	d.mu.Lock()
	// Goroutine leak: sustained count above baseline+slack.
	n := runtime.NumGoroutine()
	base := int(d.baseline.Load())
	if n > base+d.cfg.GoroutineSlack {
		d.goroStreak++
		if d.goroStreak >= d.cfg.Persist && !d.goroActive {
			d.goroActive = true
			raised = append(raised, d.raiseLocked(Verdict{
				Kind:       LeakGoroutines,
				RaisedAt:   now,
				Detail:     fmt.Sprintf("%d goroutines, baseline %d (+slack %d), %d consecutive checks", n, base, d.cfg.GoroutineSlack, d.goroStreak),
				Goroutines: n,
				Baseline:   base,
			}))
		}
	} else {
		d.goroStreak = 0
		if d.goroActive {
			d.goroActive = false
			d.cfg.Recorder.Log("leak: goroutines cleared")
		}
	}

	// Heap leak: sustained positive trend over the history window.
	if d.cfg.History != nil {
		slope, npts, ok := d.cfg.History.Trend(d.cfg.HeapMetric, now.Add(-d.cfg.Window))
		if ok {
			d.lastSlopeBits.Store(math.Float64bits(slope))
		}
		if ok && npts >= d.cfg.MinPoints && slope > d.cfg.MaxHeapSlope {
			d.heapStreak++
			if d.heapStreak >= d.cfg.Persist && !d.heapActive {
				d.heapActive = true
				raised = append(raised, d.raiseLocked(Verdict{
					Kind:     LeakHeap,
					RaisedAt: now,
					Detail:   fmt.Sprintf("heap growing %.0f B/s over %v (%d points, threshold %.0f B/s), %d consecutive checks", slope, d.cfg.Window, npts, d.cfg.MaxHeapSlope, d.heapStreak),
					SlopeBps: slope,
				}))
			}
		} else {
			d.heapStreak = 0
			if d.heapActive {
				d.heapActive = false
				d.cfg.Recorder.Log("leak: heap cleared")
			}
		}
	}
	d.mu.Unlock()

	if d.cfg.OnVerdict != nil {
		for _, v := range raised {
			d.cfg.OnVerdict(v)
		}
	}
	return raised
}

// raiseLocked records a verdict (caller holds d.mu) and logs it.
func (d *LeakDetector) raiseLocked(v Verdict) Verdict {
	d.verdictsTotal.Add(1)
	d.verdictsLog = append(d.verdictsLog, v)
	if len(d.verdictsLog) > maxVerdictLog {
		d.verdictsLog = d.verdictsLog[len(d.verdictsLog)-maxVerdictLog:]
	}
	d.cfg.Recorder.Log("leak: " + string(v.Kind) + " verdict — " + v.Detail)
	return v
}

// Active returns the leak kinds currently in the raised state.
func (d *LeakDetector) Active() []LeakKind {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []LeakKind
	if d.heapActive {
		out = append(out, LeakHeap)
	}
	if d.goroActive {
		out = append(out, LeakGoroutines)
	}
	return out
}

// Verdicts returns the retained verdict history, oldest first.
func (d *LeakDetector) Verdicts() []Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Verdict(nil), d.verdictsLog...)
}

// VerdictsTotal returns the cumulative raised-verdict count.
func (d *LeakDetector) VerdictsTotal() uint64 { return d.verdictsTotal.Load() }

// Start launches the periodic check loop and returns a stop function
// (safe to call more than once).
func (d *LeakDetector) Start() (stop func()) {
	d.stopMu.Lock()
	if d.stop == nil {
		ch := make(chan struct{})
		d.stop = ch
		go d.run(ch)
	}
	ch := d.stop
	d.stopMu.Unlock()
	return func() {
		d.stopMu.Lock()
		if d.stop == ch {
			d.stop = nil
			close(ch)
		}
		d.stopMu.Unlock()
	}
}

func (d *LeakDetector) run(ch chan struct{}) {
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ch:
			return
		case now := <-t.C:
			d.Check(now)
		}
	}
}

// RegisterMetrics publishes health.leak_verdicts (cumulative raised
// verdicts), health.leak_active (kinds currently raised), and
// health.heap_slope_bps (last fitted heap growth, bytes/second).
func (d *LeakDetector) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("health.leak_verdicts", d.verdictsTotal.Load)
	reg.GaugeFunc("health.leak_active", func() float64 { return float64(len(d.Active())) })
	reg.GaugeFunc("health.heap_slope_bps", d.HeapSlope)
}
