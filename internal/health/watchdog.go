package health

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
)

// DefaultWatchdogInterval is how often the watchdog sweeps its
// heartbeats when started with a non-positive interval.
const DefaultWatchdogInterval = 100 * time.Millisecond

// Heartbeat is one component's check-in point. Components hold only the
// Beat method (usually as a plain func() via Func), so they never
// import this package. Beat is an atomic store plus a clock read —
// cheap enough for per-wakeup use on data-plane runners.
type Heartbeat struct {
	name       string
	stallAfter time.Duration
	lastBeat   atomic.Int64 // Unix nanoseconds
	stalled    atomic.Bool
	stalls     atomic.Uint64
}

// Beat records that the component made progress now. Safe for
// concurrent use; a nil receiver is a no-op, so wiring can hand out
// heartbeats unconditionally.
func (hb *Heartbeat) Beat() {
	if hb == nil {
		return
	}
	hb.lastBeat.Store(time.Now().UnixNano())
}

// Func returns Beat as a plain callback — the form component setters
// (bus.SetBeat, DetectorConfig.Beat, …) accept. A nil receiver returns
// a no-op function.
func (hb *Heartbeat) Func() func() {
	if hb == nil {
		return func() {}
	}
	return hb.Beat
}

// Stalled reports whether the watchdog currently considers the
// component stalled.
func (hb *Heartbeat) Stalled() bool { return hb != nil && hb.stalled.Load() }

// ComponentHealth is one heartbeat's state in a Status report.
type ComponentHealth struct {
	// Name identifies the component ("bus", "runner.A", "slo", …).
	Name string `json:"name"`
	// Stalled is true while the component has been silent past its
	// stall threshold.
	Stalled bool `json:"stalled"`
	// SilentForMs is how long ago the last beat was, in milliseconds.
	SilentForMs float64 `json:"silent_for_ms"`
	// StallAfterMs is the component's stall threshold in milliseconds.
	StallAfterMs float64 `json:"stall_after_ms"`
	// Stalls counts how many times the component has entered the
	// stalled state since registration.
	Stalls uint64 `json:"stalls"`
}

// WatchdogConfig configures a Watchdog; the zero value works.
type WatchdogConfig struct {
	// Interval is the sweep period (non-positive takes
	// DefaultWatchdogInterval).
	Interval time.Duration
	// Recorder, when set, receives a standalone obs event on every
	// stall and recovery.
	Recorder *obs.Recorder
	// OnStall, when set, is called (outside the watchdog's lock) each
	// time a component transitions into the stalled state — the hook
	// the flight recorder triggers from.
	OnStall func(component string, silentFor time.Duration)
}

// Watchdog sweeps registered heartbeats on an interval: a component
// silent past its threshold transitions to stalled — emitting an obs
// event, bumping health.stalls, and firing OnStall — and transitions
// back when it beats again. Detection latency is the sweep interval,
// so thresholds below the interval are effectively rounded up to it.
type Watchdog struct {
	cfg WatchdogConfig

	mu    sync.Mutex
	beats []*Heartbeat

	stallsTotal atomic.Uint64
	stalledNow  atomic.Int64

	stopMu sync.Mutex
	stop   chan struct{}
}

// NewWatchdog returns a watchdog with no registered components.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogInterval
	}
	return &Watchdog{cfg: cfg}
}

// Register adds a component under name with the given stall threshold
// (non-positive defaults to one second) and returns its heartbeat,
// primed as of now so a component that is slow to start isn't declared
// stalled before its first real beat.
func (w *Watchdog) Register(name string, stallAfter time.Duration) *Heartbeat {
	if stallAfter <= 0 {
		stallAfter = time.Second
	}
	hb := &Heartbeat{name: name, stallAfter: stallAfter}
	hb.Beat()
	w.mu.Lock()
	w.beats = append(w.beats, hb)
	w.mu.Unlock()
	return hb
}

// Check sweeps every heartbeat against now, firing stall/recovery
// transitions. Exposed so tests can drive the watchdog without the
// ticker.
func (w *Watchdog) Check(now time.Time) {
	w.mu.Lock()
	beats := append([]*Heartbeat(nil), w.beats...)
	w.mu.Unlock()

	type stall struct {
		name   string
		silent time.Duration
	}
	var fired []stall
	for _, hb := range beats {
		silent := now.Sub(time.Unix(0, hb.lastBeat.Load()))
		if silent > hb.stallAfter {
			if hb.stalled.CompareAndSwap(false, true) {
				hb.stalls.Add(1)
				w.stallsTotal.Add(1)
				w.stalledNow.Add(1)
				// Log before OnStall so a flight dump triggered by the
				// stall contains its own trigger event.
				w.cfg.Recorder.Log(fmt.Sprintf("watchdog: %s stalled (silent %v)", hb.name, silent.Round(time.Millisecond)))
				fired = append(fired, stall{hb.name, silent})
			}
		} else if hb.stalled.CompareAndSwap(true, false) {
			w.stalledNow.Add(-1)
			w.cfg.Recorder.Log(fmt.Sprintf("watchdog: %s recovered", hb.name))
		}
	}
	if w.cfg.OnStall != nil {
		for _, s := range fired {
			w.cfg.OnStall(s.name, s.silent)
		}
	}
}

// Start launches the sweep loop and returns a stop function (safe to
// call more than once).
func (w *Watchdog) Start() (stop func()) {
	w.stopMu.Lock()
	if w.stop == nil {
		ch := make(chan struct{})
		w.stop = ch
		go w.run(ch)
	}
	ch := w.stop
	w.stopMu.Unlock()
	return func() {
		w.stopMu.Lock()
		if w.stop == ch {
			w.stop = nil
			close(ch)
		}
		w.stopMu.Unlock()
	}
}

func (w *Watchdog) run(ch chan struct{}) {
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ch:
			return
		case now := <-t.C:
			w.Check(now)
		}
	}
}

// Stalls returns the cumulative count of stall transitions.
func (w *Watchdog) Stalls() uint64 { return w.stallsTotal.Load() }

// StalledNow returns how many components are currently stalled.
func (w *Watchdog) StalledNow() int { return int(w.stalledNow.Load()) }

// Status reports every registered component's state as of now, sorted
// by name.
func (w *Watchdog) Status(now time.Time) []ComponentHealth {
	w.mu.Lock()
	beats := append([]*Heartbeat(nil), w.beats...)
	w.mu.Unlock()
	out := make([]ComponentHealth, 0, len(beats))
	for _, hb := range beats {
		out = append(out, ComponentHealth{
			Name:         hb.name,
			Stalled:      hb.stalled.Load(),
			SilentForMs:  float64(now.Sub(time.Unix(0, hb.lastBeat.Load()))) / float64(time.Millisecond),
			StallAfterMs: float64(hb.stallAfter) / float64(time.Millisecond),
			Stalls:       hb.stalls.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterMetrics publishes health.stalls (cumulative stall
// transitions) and health.stalled (components stalled right now).
func (w *Watchdog) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("health.stalls", w.stallsTotal.Load)
	reg.GaugeFunc("health.stalled", func() float64 { return float64(w.stalledNow.Load()) })
}
