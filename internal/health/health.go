package health

import (
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
)

// Health aggregates the package's components into the one view
// /healthz serves. Every field is optional: a daemon that only wires
// Vitals still gets a meaningful (always-healthy) status, and the
// aggregate degrades to "healthy" rather than lying "unhealthy" when a
// detector isn't attached.
type Health struct {
	// Vitals supplies the process-level numbers in Status.
	Vitals *Vitals
	// Watchdog supplies per-component stall states.
	Watchdog *Watchdog
	// Leaks supplies active leak verdicts.
	Leaks *LeakDetector
	// Flight is reported by dump count and serves /debug/flight.
	Flight *FlightRecorder
}

// Status is the JSON document /healthz serves.
type Status struct {
	// Healthy is the aggregate verdict: no stalled components and no
	// active leak verdicts. It drives the endpoint's 200/503 split.
	Healthy bool `json:"healthy"`
	// TakenAt stamps the report.
	TakenAt time.Time `json:"taken_at"`
	// Components is the watchdog's per-component view.
	Components []ComponentHealth `json:"components,omitempty"`
	// LeakActive lists leak kinds currently raised; LeakVerdicts is the
	// retained verdict history.
	LeakActive   []LeakKind `json:"leak_active,omitempty"`
	LeakVerdicts []Verdict  `json:"leak_verdicts,omitempty"`
	// Goroutines and HeapInuseBytes are the last-sampled vitals;
	// HeapSlopeBps is the leak detector's last fitted heap trend.
	Goroutines     int     `json:"goroutines,omitempty"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes,omitempty"`
	HeapSlopeBps   float64 `json:"heap_slope_bps,omitempty"`
	// FlightDumps counts captured flight bundles.
	FlightDumps int `json:"flight_dumps,omitempty"`
}

// Status builds the aggregate report as of now. Safe for concurrent
// use; a nil receiver reports healthy with no detail — the static-ok
// behaviour /healthz had before this package existed.
func (h *Health) Status(now time.Time) Status {
	s := Status{Healthy: true, TakenAt: now}
	if h == nil {
		return s
	}
	if h.Watchdog != nil {
		s.Components = h.Watchdog.Status(now)
		for _, c := range s.Components {
			if c.Stalled {
				s.Healthy = false
			}
		}
	}
	if h.Leaks != nil {
		s.LeakActive = h.Leaks.Active()
		s.LeakVerdicts = h.Leaks.Verdicts()
		s.HeapSlopeBps = h.Leaks.HeapSlope()
		if len(s.LeakActive) > 0 {
			s.Healthy = false
		}
	}
	if h.Vitals != nil {
		s.Goroutines = h.Vitals.Goroutines()
		s.HeapInuseBytes = h.Vitals.HeapInuse()
	}
	if h.Flight != nil {
		s.FlightDumps = len(h.Flight.Dumps())
	}
	return s
}

// Healthy reports the aggregate verdict as of now.
func (h *Health) Healthy(now time.Time) bool { return h.Status(now).Healthy }

// Start launches every attached component's background loop (vitals
// sampling, watchdog sweeps, leak checks) and returns one stop
// function. Nil components are skipped; the flight recorder has no
// loop — its buffers are the obs/history rings, which run on their
// own.
func (h *Health) Start() (stop func()) {
	var stops []func()
	if h.Vitals != nil {
		stops = append(stops, h.Vitals.Start())
	}
	if h.Watchdog != nil {
		stops = append(stops, h.Watchdog.Start())
	}
	if h.Leaks != nil {
		stops = append(stops, h.Leaks.Start())
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// Attach builds the standard daemon harness over a process's existing
// observability surfaces: vitals, a watchdog, a leak detector over
// hist, and a flight recorder whose triggers are wired — a firing SLO
// alert (via ev.SetOnFire), a watchdog stall, or a leak verdict each
// freeze a bundle. All defaults, all metrics registered into reg, all
// loops started. Returns the aggregate (hand it to introspect.Options
// along with its Flight field) and one stop function.
//
// Components may be nil: a nil hist skips the heap-trend detector's
// input, a nil ev skips alert capture and the OnFire trigger.
func Attach(reg *metrics.Registry, hist *metrics.History, rec *obs.Recorder, ev *slo.Evaluator) (*Health, func()) {
	vitals := NewVitals(0)
	flightCfg := FlightConfig{Registry: reg, History: hist, Recorder: rec, SLO: ev}
	flight := NewFlightRecorder(flightCfg)
	wd := NewWatchdog(WatchdogConfig{
		Recorder: rec,
		OnStall: func(component string, silentFor time.Duration) {
			flight.Trigger("watchdog-stall", component+" silent "+silentFor.String())
		},
	})
	leaks := NewLeakDetector(LeakConfig{
		History:  hist,
		Recorder: rec,
		OnVerdict: func(v Verdict) {
			flight.Trigger("leak-verdict", string(v.Kind)+": "+v.Detail)
		},
	})
	if ev != nil {
		ev.SetOnFire(func(a slo.Alert) {
			flight.Trigger("slo-alert", string(a.Chain)+": "+a.Reason)
		})
	}
	if reg != nil {
		vitals.RegisterMetrics(reg)
		wd.RegisterMetrics(reg)
		leaks.RegisterMetrics(reg)
		flight.RegisterMetrics(reg)
	}
	h := &Health{Vitals: vitals, Watchdog: wd, Leaks: leaks, Flight: flight}
	return h, h.Start()
}
