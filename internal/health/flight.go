package health

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
)

// Flight-recorder defaults: keep the last half-minute of evidence,
// retain a handful of bundles, and debounce triggers so one incident
// (an SLO alert plus the watchdog stall it causes) produces one dump,
// not a dump per symptom.
const (
	DefaultFlightWindow      = 30 * time.Second
	DefaultFlightMaxDumps    = 8
	DefaultFlightMinInterval = 2 * time.Second
)

// FlightConfig configures a FlightRecorder. Every source is optional:
// a nil field just leaves that section out of the bundle.
type FlightConfig struct {
	// Window is how far back a dump reaches (default
	// DefaultFlightWindow).
	Window time.Duration
	// MaxDumps bounds the retained bundles; older ones are evicted
	// (default DefaultFlightMaxDumps).
	MaxDumps int
	// MinInterval debounces triggers: a trigger closer than this to the
	// previous accepted one is dropped (default
	// DefaultFlightMinInterval).
	MinInterval time.Duration
	// Registry is snapshotted at dump time for the point-in-time view.
	Registry *metrics.Registry
	// History contributes the metric time series inside the window.
	History *metrics.History
	// Recorder contributes spans and events inside the window.
	Recorder *obs.Recorder
	// SLO contributes alerts that fired inside the window (or are still
	// firing).
	SLO *slo.Evaluator
	// DisableProfiles skips the pprof heap/goroutine captures — they
	// cost a stop-the-world stack walk, which tight benchmark loops may
	// not want.
	DisableProfiles bool
}

// Dump is one self-contained flight bundle: everything the process
// knew about the window leading up to the trigger, serialisable as a
// single JSON document.
type Dump struct {
	// ID is the bundle's retrieval key at /debug/flight?id=.
	ID int `json:"id"`
	// Reason is the trigger class ("slo-alert", "watchdog-stall",
	// "leak-verdict", "http-poke", …); Detail is trigger-specific.
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// TakenAt stamps the capture; WindowMs is the lookback that bounded
	// the Spans/Events/Alerts/History sections.
	TakenAt  time.Time `json:"taken_at"`
	WindowMs int64     `json:"window_ms"`
	// Goroutines is the live goroutine count at capture.
	Goroutines int `json:"goroutines"`
	// Spans and Events are the obs ring contents inside the window.
	Spans  []obs.Span  `json:"spans,omitempty"`
	Events []obs.Event `json:"events,omitempty"`
	// Alerts are SLO alerts that fired inside the window or were still
	// firing at capture.
	Alerts []slo.Alert `json:"alerts,omitempty"`
	// History is the metric time series inside the window; Metrics is
	// the full point-in-time snapshot at capture.
	History []*metrics.Snapshot `json:"history,omitempty"`
	Metrics *metrics.Snapshot   `json:"metrics,omitempty"`
	// HeapProfile is the gzipped pprof heap profile (base64 in JSON);
	// GoroutineStacks is the debug=1 text goroutine profile.
	HeapProfile     []byte `json:"heap_profile,omitempty"`
	GoroutineStacks string `json:"goroutine_stacks,omitempty"`
}

// DumpInfo is the list-view summary served at /debug/flight.
type DumpInfo struct {
	ID       int       `json:"id"`
	Reason   string    `json:"reason"`
	Detail   string    `json:"detail,omitempty"`
	TakenAt  time.Time `json:"taken_at"`
	Spans    int       `json:"spans"`
	Events   int       `json:"events"`
	Alerts   int       `json:"alerts"`
	History  int       `json:"history_points"`
	Profiles bool      `json:"profiles"`
}

// FlightRecorder is the black box: the obs rings and metric history
// already buffer the recent past continuously, and Trigger freezes
// that window — plus pprof heap/goroutine profiles — into a bounded
// list of retrievable bundles. Wire OnFire/OnStall/OnVerdict hooks to
// Trigger so the evidence is preserved at the moment something goes
// wrong, not when a human shows up.
type FlightRecorder struct {
	cfg FlightConfig

	mu       sync.Mutex
	dumps    []*Dump
	nextID   int
	lastDump time.Time

	dumpsTotal     atomic.Uint64
	dropsDebounced atomic.Uint64
}

// NewFlightRecorder returns a recorder with no dumps taken.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultFlightWindow
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = DefaultFlightMaxDumps
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultFlightMinInterval
	}
	return &FlightRecorder{cfg: cfg}
}

// Rearm clears the debounce clock: the next Trigger freezes a bundle
// no matter how recently the last dump was taken. Call it once an
// incident is handled, so a bundle frozen for a transient moments ago
// cannot swallow the trigger for the next, unrelated incident.
func (f *FlightRecorder) Rearm() {
	f.mu.Lock()
	f.lastDump = time.Time{}
	f.mu.Unlock()
}

// Trigger captures a bundle now. ok is false when the trigger was
// debounced (a dump was taken less than MinInterval ago); the earlier
// dump already covers the incident.
func (f *FlightRecorder) Trigger(reason, detail string) (d *Dump, ok bool) {
	now := time.Now()
	f.mu.Lock()
	if !f.lastDump.IsZero() && now.Sub(f.lastDump) < f.cfg.MinInterval {
		f.mu.Unlock()
		f.dropsDebounced.Add(1)
		return nil, false
	}
	f.lastDump = now
	f.nextID++
	id := f.nextID
	f.mu.Unlock()

	d = f.capture(id, reason, detail, now)

	f.mu.Lock()
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > f.cfg.MaxDumps {
		f.dumps = f.dumps[len(f.dumps)-f.cfg.MaxDumps:]
	}
	f.mu.Unlock()
	f.dumpsTotal.Add(1)
	// Logged after capture: the dump stays about the incident, and the
	// event ring still records that the black box fired.
	f.cfg.Recorder.Log("flight: dump #" + strconv.Itoa(id) + " (" + reason + ")")
	return d, true
}

// capture builds the bundle; it runs outside f.mu so a slow pprof walk
// never blocks concurrent list/get calls.
func (f *FlightRecorder) capture(id int, reason, detail string, now time.Time) *Dump {
	cutoff := now.Add(-f.cfg.Window)
	cutoffNs := cutoff.UnixNano()
	d := &Dump{
		ID:         id,
		Reason:     reason,
		Detail:     detail,
		TakenAt:    now,
		WindowMs:   f.cfg.Window.Milliseconds(),
		Goroutines: runtime.NumGoroutine(),
	}
	if f.cfg.Recorder != nil {
		for _, s := range f.cfg.Recorder.Spans() {
			if s.EndNs >= cutoffNs {
				d.Spans = append(d.Spans, s)
			}
		}
		for _, e := range f.cfg.Recorder.Events() {
			if e.AtNs >= cutoffNs {
				d.Events = append(d.Events, e)
			}
		}
	}
	if f.cfg.SLO != nil {
		for _, a := range f.cfg.SLO.Alerts() {
			if !a.FiredAt.Before(cutoff) || a.ResolvedAt.IsZero() || !a.ResolvedAt.Before(cutoff) {
				d.Alerts = append(d.Alerts, a)
			}
		}
	}
	if f.cfg.History != nil {
		d.History = f.cfg.History.PointsSince(cutoff)
	}
	if f.cfg.Registry != nil {
		d.Metrics = f.cfg.Registry.Snapshot()
	}
	if !f.cfg.DisableProfiles {
		var heap bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&heap, 0); err == nil {
			d.HeapProfile = heap.Bytes()
		}
		var goro bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&goro, 1); err == nil {
			d.GoroutineStacks = goro.String()
		}
	}
	return d
}

// Dumps returns list-view summaries of the retained bundles, oldest
// first.
func (f *FlightRecorder) Dumps() []DumpInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DumpInfo, 0, len(f.dumps))
	for _, d := range f.dumps {
		out = append(out, DumpInfo{
			ID:       d.ID,
			Reason:   d.Reason,
			Detail:   d.Detail,
			TakenAt:  d.TakenAt,
			Spans:    len(d.Spans),
			Events:   len(d.Events),
			Alerts:   len(d.Alerts),
			History:  len(d.History),
			Profiles: len(d.HeapProfile) > 0,
		})
	}
	return out
}

// Dump returns the full bundle by ID.
func (f *FlightRecorder) Dump(id int) (*Dump, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range f.dumps {
		if d.ID == id {
			return d, true
		}
	}
	return nil, false
}

// DumpsTotal returns the cumulative accepted-trigger count.
func (f *FlightRecorder) DumpsTotal() uint64 { return f.dumpsTotal.Load() }

// RegisterMetrics publishes health.flight_dumps (bundles captured) and
// health.flight_debounced (triggers dropped by the debounce window).
func (f *FlightRecorder) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("health.flight_dumps", f.dumpsTotal.Load)
	reg.CounterFunc("health.flight_debounced", f.dropsDebounced.Load)
}
