// Package health watches the Switchboard process itself: runtime
// vitals sampled from runtime/metrics, a watchdog that long-lived
// components heartbeat into, leak detectors over goroutine counts and
// the heap trend, and a black-box flight recorder that preserves the
// last seconds of spans, events, and metric history whenever something
// goes wrong. The application plane (forwarders, bus, TE, SLOs) is
// metered by its own packages; this package answers the question those
// can't — is the process hosting them still healthy at hour six of a
// soak?
//
// The import direction is strictly downward: health imports metrics,
// obs, and slo; the components being watched take plain func() beat
// callbacks, so none of them import health.
package health

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	sbmetrics "switchboard/internal/metrics"
)

// DefaultVitalsInterval is how often Vitals reads runtime/metrics when
// started with a non-positive interval. Reading is cheap (a handful of
// atomic loads inside the runtime), so sub-second sampling is fine.
const DefaultVitalsInterval = 250 * time.Millisecond

// runtime/metrics keys the sampler reads. All are supported since well
// before the module's Go floor; readVitals still tolerates a
// KindBad value defensively.
const (
	rmHeapInuse    = "/memory/classes/heap/objects:bytes"
	rmHeapReleased = "/memory/classes/heap/released:bytes"
	rmStackInuse   = "/memory/classes/heap/stacks:bytes"
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGCPauses     = "/gc/pauses:seconds"
	rmSchedLat     = "/sched/latencies:seconds"
)

// Vitals samples the Go runtime's own health signals — heap in use and
// released, stack bytes, goroutine count, GC cycles, and the p99 of GC
// pause and scheduler latency — and exposes them as runtime.* gauges
// and counters on a metrics registry. Sampled values are stored in
// atomics, so registry snapshot reads never touch runtime/metrics
// directly and gauge reads are allocation-free.
type Vitals struct {
	interval time.Duration

	mu      sync.Mutex // guards samples (reused across reads)
	samples []metrics.Sample

	heapInuse    atomic.Uint64
	heapReleased atomic.Uint64
	stackInuse   atomic.Uint64
	goroutines   atomic.Int64
	gcCycles     atomic.Uint64
	gcPauseP99Ns atomic.Int64
	schedLatP99  atomic.Int64
	sampleCount  atomic.Uint64

	stopMu sync.Mutex
	stop   chan struct{}
}

// NewVitals returns a sampler reading runtime/metrics every interval
// (non-positive takes DefaultVitalsInterval) once started. The first
// read happens immediately so gauges are meaningful before the first
// tick.
func NewVitals(interval time.Duration) *Vitals {
	if interval <= 0 {
		interval = DefaultVitalsInterval
	}
	v := &Vitals{
		interval: interval,
		samples: []metrics.Sample{
			{Name: rmHeapInuse},
			{Name: rmHeapReleased},
			{Name: rmStackInuse},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
	}
	v.Sample()
	return v
}

// Sample reads runtime/metrics once and updates the published values.
// Exposed so tests and experiments can sample deterministically.
func (v *Vitals) Sample() {
	v.mu.Lock()
	metrics.Read(v.samples)
	for _, s := range v.samples {
		switch s.Name {
		case rmHeapInuse:
			v.heapInuse.Store(sampleUint(s))
		case rmHeapReleased:
			v.heapReleased.Store(sampleUint(s))
		case rmStackInuse:
			v.stackInuse.Store(sampleUint(s))
		case rmGoroutines:
			v.goroutines.Store(int64(sampleUint(s)))
		case rmGCCycles:
			v.gcCycles.Store(sampleUint(s))
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				v.gcPauseP99Ns.Store(int64(histPercentile(s.Value.Float64Histogram(), 0.99) * 1e9))
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				v.schedLatP99.Store(int64(histPercentile(s.Value.Float64Histogram(), 0.99) * 1e9))
			}
		}
	}
	v.mu.Unlock()
	v.sampleCount.Add(1)
}

// sampleUint extracts a uint64 from a sample of any numeric kind.
func sampleUint(s metrics.Sample) uint64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return s.Value.Uint64()
	case metrics.KindFloat64:
		return uint64(s.Value.Float64())
	default:
		return 0
	}
}

// histPercentile walks a cumulative runtime/metrics histogram and
// returns the q-th percentile bucket boundary in the histogram's native
// unit (seconds for pauses and latencies). Buckets has one more entry
// than Counts; the first/last boundary may be ±Inf, in which case the
// finite neighbour is reported instead.
func histPercentile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, +1) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// Start launches the sampling loop and returns a stop function (safe
// to call more than once). Starting an already-running sampler returns
// another stop for the running loop.
func (v *Vitals) Start() (stop func()) {
	v.stopMu.Lock()
	if v.stop == nil {
		ch := make(chan struct{})
		v.stop = ch
		go v.run(ch)
	}
	ch := v.stop
	v.stopMu.Unlock()
	return func() {
		v.stopMu.Lock()
		if v.stop == ch {
			v.stop = nil
			close(ch)
		}
		v.stopMu.Unlock()
	}
}

func (v *Vitals) run(ch chan struct{}) {
	t := time.NewTicker(v.interval)
	defer t.Stop()
	for {
		select {
		case <-ch:
			return
		case <-t.C:
			v.Sample()
		}
	}
}

// HeapInuse returns the last-sampled live heap bytes.
func (v *Vitals) HeapInuse() uint64 { return v.heapInuse.Load() }

// Goroutines returns the last-sampled goroutine count.
func (v *Vitals) Goroutines() int { return int(v.goroutines.Load()) }

// RegisterMetrics publishes the vitals on reg under the runtime.*
// names catalogued in OBSERVABILITY.md, plus health.vitals_samples so
// sampling liveness itself is observable.
func (v *Vitals) RegisterMetrics(reg *sbmetrics.Registry) {
	reg.GaugeFunc("runtime.heap_inuse_bytes", func() float64 { return float64(v.heapInuse.Load()) })
	reg.GaugeFunc("runtime.heap_released_bytes", func() float64 { return float64(v.heapReleased.Load()) })
	reg.GaugeFunc("runtime.stack_inuse_bytes", func() float64 { return float64(v.stackInuse.Load()) })
	reg.GaugeFunc("runtime.goroutines", func() float64 { return float64(v.goroutines.Load()) })
	reg.CounterFunc("runtime.gc_cycles", v.gcCycles.Load)
	reg.GaugeFunc("runtime.gc_pause_p99_ns", func() float64 { return float64(v.gcPauseP99Ns.Load()) })
	reg.GaugeFunc("runtime.sched_latency_p99_ns", func() float64 { return float64(v.schedLatP99.Load()) })
	reg.CounterFunc("health.vitals_samples", v.sampleCount.Load)
}
