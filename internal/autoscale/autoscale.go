// Package autoscale closes the SLO loop: a reconciler on the Global
// Switchboard consumes the SLO evaluator's firing alerts, decides per
// VNF role whether more (or fewer) instances would help, and executes
// the decision through the existing control plane — instance
// allocation, forwarder-set growth, TE recompute, route republish, and
// a live migration of existing flows onto the new instance (package
// controller's scale layer).
//
// Not every breach is the autoscaler's to fix: a loss-dominated breach
// (offered traffic silently vanishing) is the signature of a site
// blackout — failover's domain, already handled by the heartbeat path —
// and adding instances to a dead site would be harmful churn. The
// reconciler therefore classifies each firing alert by its reason and
// only acts on latency- or drop-dominated breaches, where the chain is
// overloaded rather than partitioned.
//
// Decisions are deliberately sluggish: a breach must persist for
// ScaleOutAfter consecutive reconcile passes before acting (the SLO
// evaluator already debounces with FireAfter, this is a second layer
// against flapping), a chain must be clear for the much longer
// ScaleInAfter before shrinking, and Cooldown enforces a minimum gap
// between consecutive actions on the same chain so one action's effect
// is observable before the next.
package autoscale

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
)

// Outcome is what an executed scale action reports back to the
// reconciler (a thin view of controller.ScaleOutcome, keeping this
// package testable without a control plane).
type Outcome struct {
	// Instances is the role's instance count after the action.
	Instances int
	// FlowsMoved counts flow-table records live-migrated by the action.
	FlowsMoved int
	// PacketsLost counts packets the migration could not preserve.
	PacketsLost uint64
}

// Executor performs scale actions. Production use wraps the Global
// Switchboard (GSExecutor); tests substitute a fake.
type Executor interface {
	// ScaleOut adds one instance to the chain's role and migrates flows
	// onto it. rate is the observed offered rate for the TE recompute
	// (0 keeps the previous estimate).
	ScaleOut(chain, role string, rate float64) (Outcome, error)
	// ScaleIn retires one instance of the chain's role after migrating
	// its flows off.
	ScaleIn(chain, role string, rate float64) (Outcome, error)
}

// Policy subscribes one chain's VNF role to the reconciler. The chain
// identifier must match the SLO evaluator's (chain name, or decimal
// label).
type Policy struct {
	Chain string
	// Role is the VNF service to scale when the chain breaches.
	Role string
	// MinInstances/MaxInstances bound the instance count (defaults 1 and
	// 4). The reconciler never acts outside these.
	MinInstances int
	MaxInstances int
	// Rate optionally reports the chain's observed offered rate
	// (packets/s) for TE recomputes; nil keeps the previous estimate.
	Rate func() float64
}

// Config tunes the reconciler. Zero-value fields take the defaults
// noted on each field.
type Config struct {
	// Evaluator is the SLO engine whose alerts drive decisions. Required.
	Evaluator *slo.Evaluator
	// Executor performs the scale actions. Required.
	Executor Executor
	// Interval is the reconcile period for Start (default 100ms).
	Interval time.Duration
	// ScaleOutAfter is how many consecutive reconcile passes a scalable
	// breach must persist before scaling out (default 2).
	ScaleOutAfter int
	// ScaleInAfter is how many consecutive clear passes before scaling
	// in (default 50 — scale-in should be much lazier than scale-out).
	ScaleInAfter int
	// Cooldown is the minimum gap between actions on one chain
	// (default 500ms).
	Cooldown time.Duration
	// MaxDecisions bounds the retained decision log (default 128).
	MaxDecisions int
	// Recorder receives autoscale action spans (default obs.Default()).
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ScaleOutAfter <= 0 {
		c.ScaleOutAfter = 2
	}
	if c.ScaleInAfter <= 0 {
		c.ScaleInAfter = 50
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = 128
	}
	if c.Recorder == nil {
		c.Recorder = obs.Default()
	}
	return c
}

// Decision actions.
const (
	ActionScaleOut = "scale-out"
	ActionScaleIn  = "scale-in"
	// ActionSkipLoss records a firing alert the reconciler deliberately
	// left alone because its breach is loss-dominated (failover's
	// domain, not capacity's).
	ActionSkipLoss = "skip-loss"
)

// Decision is one entry of the reconciler's decision log, served at
// /autoscaler.
type Decision struct {
	Time   time.Time `json:"time"`
	Chain  string    `json:"chain"`
	Role   string    `json:"role"`
	Action string    `json:"action"`
	// Reason is the alert reason that motivated the decision (scale-out
	// and skip), or the clear-streak note (scale-in).
	Reason string `json:"reason"`
	// Instances is the role's instance count after the action.
	Instances int `json:"instances"`
	// FlowsMoved/PacketsLost summarize the action's live migration.
	FlowsMoved  int    `json:"flows_moved"`
	PacketsLost uint64 `json:"packets_lost"`
	// Err is the execution error, "" on success.
	Err string `json:"err,omitempty"`
}

// policyState is one policy's reconciler-side state.
type policyState struct {
	p             Policy
	instances     int
	breachStreak  int
	clearStreak   int
	lastAction    time.Time
	everActed     bool
	watchingAlert bool
	// firedAt is the open alert's fire time while the reconciler is
	// waiting for it to resolve (time-to-resolve measurement).
	firedAt time.Time
	// skippedFiredAt dedupes skip-loss log entries per alert.
	skippedFiredAt time.Time
}

// PolicyStatus is one policy's live view, served at /autoscaler.
type PolicyStatus struct {
	Chain        string    `json:"chain"`
	Role         string    `json:"role"`
	State        string    `json:"state"` // the SLO evaluator's alert state
	Instances    int       `json:"instances"`
	Min          int       `json:"min"`
	Max          int       `json:"max"`
	BreachStreak int       `json:"breach_streak"`
	ClearStreak  int       `json:"clear_streak"`
	LastAction   time.Time `json:"last_action,omitempty"`
}

// Status is the /autoscaler payload.
type Status struct {
	Policies  []PolicyStatus `json:"policies"`
	Decisions []Decision     `json:"decisions"`
}

// Autoscaler reconciles SLO alert state into scale actions. Construct
// with New, add chains with Add, drive it with Start (background
// ticker) or Reconcile (deterministic tests and experiments).
type Autoscaler struct {
	cfg Config

	mu        sync.Mutex
	policies  []*policyState
	decisions []Decision

	decisionsN  *metrics.Counter
	migrations  *metrics.Counter
	flowsMoved  *metrics.Counter
	packetsLost *metrics.Counter
	resolveMs   *metrics.Histogram

	// beat (SetBeat) is called once per Reconcile pass — the
	// autoscaler's health-watchdog heartbeat. Runs outside a.mu.
	beat func()

	stop chan struct{}
	done chan struct{}
}

// New builds an autoscaler. Evaluator and Executor are required.
func New(cfg Config) (*Autoscaler, error) {
	if cfg.Evaluator == nil {
		return nil, fmt.Errorf("autoscale: Config.Evaluator is required")
	}
	if cfg.Executor == nil {
		return nil, fmt.Errorf("autoscale: Config.Executor is required")
	}
	return &Autoscaler{
		cfg:         cfg.withDefaults(),
		decisionsN:  &metrics.Counter{},
		migrations:  &metrics.Counter{},
		flowsMoved:  &metrics.Counter{},
		packetsLost: &metrics.Counter{},
		resolveMs:   metrics.NewHistogram(),
	}, nil
}

// RegisterMetrics publishes the reconciler's counters:
//
//	autoscale.decisions          scale actions attempted (out + in)
//	autoscale.migrations         live flow migrations executed
//	migrate.flows_moved          flow records repinned across all migrations
//	migrate.packets_lost         packets migrations could not preserve
//	autoscale.time_to_resolve_ms histogram: alert fire → resolve, for
//	                             alerts the autoscaler acted on
func (a *Autoscaler) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("autoscale.decisions", a.decisionsN.Load)
	r.CounterFunc("autoscale.migrations", a.migrations.Load)
	r.CounterFunc("migrate.flows_moved", a.flowsMoved.Load)
	r.CounterFunc("migrate.packets_lost", a.packetsLost.Load)
	r.RegisterHistogram("autoscale.time_to_resolve_ms", a.resolveMs)
}

// Add subscribes a chain's role to reconciliation. currentInstances
// seeds the instance count the bounds are checked against.
func (a *Autoscaler) Add(p Policy, currentInstances int) {
	if p.MinInstances <= 0 {
		p.MinInstances = 1
	}
	if p.MaxInstances < p.MinInstances {
		p.MaxInstances = p.MinInstances + 3
	}
	if currentInstances < p.MinInstances {
		currentInstances = p.MinInstances
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, ps := range a.policies {
		if ps.p.Chain == p.Chain && ps.p.Role == p.Role {
			a.policies[i] = &policyState{p: p, instances: currentInstances}
			return
		}
	}
	a.policies = append(a.policies, &policyState{p: p, instances: currentInstances})
}

// Remove unsubscribes a chain's policies (all roles). Used alongside
// slo.Evaluator.Forget when a chain is deleted.
func (a *Autoscaler) Remove(chain string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.policies[:0]
	for _, ps := range a.policies {
		if ps.p.Chain != chain {
			out = append(out, ps)
		}
	}
	a.policies = out
}

// scalable classifies an alert reason: latency- or drop-dominated
// breaches are capacity problems the autoscaler can fix; pure loss is
// a partition/blackout signature owned by failover.
func scalable(reason string) bool {
	return strings.Contains(reason, "latency") || strings.Contains(reason, "drops")
}

// openAlert finds the unresolved alert for chain, newest first.
func openAlert(alerts []slo.Alert, chain string) (slo.Alert, bool) {
	for i := len(alerts) - 1; i >= 0; i-- {
		if alerts[i].Chain == chain && alerts[i].ResolvedAt.IsZero() {
			return alerts[i], true
		}
	}
	return slo.Alert{}, false
}

// resolvedAlert finds the most recent resolved alert for chain that
// fired at firedAt.
func resolvedAlert(alerts []slo.Alert, chain string, firedAt time.Time) (slo.Alert, bool) {
	for i := len(alerts) - 1; i >= 0; i-- {
		if alerts[i].Chain == chain && alerts[i].FiredAt.Equal(firedAt) && !alerts[i].ResolvedAt.IsZero() {
			return alerts[i], true
		}
	}
	return slo.Alert{}, false
}

// Reconcile runs one pass at the given time: per policy it reads the
// chain's alert state, advances the hysteresis streaks, and executes at
// most one scale action. Exported so tests and experiments can drive
// the reconciler deterministically; Start calls it on a ticker.
func (a *Autoscaler) Reconcile(now time.Time) {
	a.mu.Lock()
	policies := append([]*policyState(nil), a.policies...)
	beat := a.beat
	a.mu.Unlock()
	if beat != nil {
		beat()
	}

	alerts := a.cfg.Evaluator.Alerts()
	for _, ps := range policies {
		a.reconcilePolicy(ps, alerts, now)
	}
}

// reconcilePolicy advances one policy. Streak state is owned by the
// reconcile loop (single caller at a time for a given policy under
// Start; concurrent Reconcile calls are the caller's responsibility).
func (a *Autoscaler) reconcilePolicy(ps *policyState, alerts []slo.Alert, now time.Time) {
	chain := ps.p.Chain
	state := a.cfg.Evaluator.State(chain)

	// Close out a resolve watch: the alert we acted on has resolved, so
	// fold fire→resolve into the time-to-resolve histogram.
	if ps.watchingAlert && state != slo.StateFiring {
		if al, ok := resolvedAlert(alerts, chain, ps.firedAt); ok {
			a.resolveMs.Observe(al.ResolvedAt.Sub(al.FiredAt))
			ps.watchingAlert = false
		}
	}

	if state != slo.StateFiring {
		ps.breachStreak = 0
		ps.clearStreak++
		if state == slo.StateOK && ps.everActed &&
			ps.clearStreak >= a.cfg.ScaleInAfter &&
			ps.instances > ps.p.MinInstances &&
			now.Sub(ps.lastAction) >= a.cfg.Cooldown {
			a.execute(ps, ActionScaleIn, fmt.Sprintf("clear for %d passes", ps.clearStreak), now)
			ps.clearStreak = 0
		}
		return
	}

	ps.clearStreak = 0
	al, ok := openAlert(alerts, chain)
	if !ok {
		return
	}
	if !scalable(al.Reason) {
		// Loss-dominated breach: failover's domain. Record the skip once
		// per alert so the log shows the classification happened.
		if !ps.skippedFiredAt.Equal(al.FiredAt) {
			a.record(Decision{
				Time: now, Chain: chain, Role: ps.p.Role,
				Action: ActionSkipLoss, Reason: al.Reason, Instances: ps.instances,
			})
			ps.skippedFiredAt = al.FiredAt
		}
		ps.breachStreak = 0
		return
	}

	ps.breachStreak++
	if ps.breachStreak < a.cfg.ScaleOutAfter {
		return
	}
	if now.Sub(ps.lastAction) < a.cfg.Cooldown {
		return
	}
	if ps.instances >= ps.p.MaxInstances {
		return
	}
	ps.watchingAlert = true
	ps.firedAt = al.FiredAt
	a.execute(ps, ActionScaleOut, al.Reason, now)
	ps.breachStreak = 0
}

// execute runs one scale action through the executor and records the
// decision, metrics, and span.
func (a *Autoscaler) execute(ps *policyState, action, reason string, now time.Time) {
	sp := a.cfg.Recorder.Start("autoscale."+action, "", 0)
	sp.Event(fmt.Sprintf("%s %s/%s: %s", action, ps.p.Chain, ps.p.Role, reason))
	defer sp.End()

	var rate float64
	if ps.p.Rate != nil {
		rate = ps.p.Rate()
	}
	a.decisionsN.Inc()
	var out Outcome
	var err error
	if action == ActionScaleOut {
		out, err = a.cfg.Executor.ScaleOut(ps.p.Chain, ps.p.Role, rate)
	} else {
		out, err = a.cfg.Executor.ScaleIn(ps.p.Chain, ps.p.Role, rate)
	}
	d := Decision{
		Time: now, Chain: ps.p.Chain, Role: ps.p.Role,
		Action: action, Reason: reason,
		Instances: out.Instances, FlowsMoved: out.FlowsMoved, PacketsLost: out.PacketsLost,
	}
	ps.lastAction = now
	if err != nil {
		d.Err = err.Error()
		d.Instances = ps.instances
		sp.Fail(err)
		a.record(d)
		return
	}
	ps.everActed = true
	if out.Instances > 0 {
		ps.instances = out.Instances
	}
	if out.FlowsMoved > 0 || out.PacketsLost > 0 {
		a.migrations.Inc()
		a.flowsMoved.Add(uint64(out.FlowsMoved))
		a.packetsLost.Add(out.PacketsLost)
	}
	sp.Event(fmt.Sprintf("%d instances, %d flows moved, %d packets lost",
		ps.instances, out.FlowsMoved, out.PacketsLost))
	a.record(d)
}

// record appends to the bounded decision log.
func (a *Autoscaler) record(d Decision) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.decisions) >= a.cfg.MaxDecisions {
		a.decisions = a.decisions[1:]
	}
	a.decisions = append(a.decisions, d)
}

// Decisions returns a copy of the decision log, oldest first.
func (a *Autoscaler) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Decision, len(a.decisions))
	copy(out, a.decisions)
	return out
}

// Status reports the reconciler's live view — the /autoscaler payload.
func (a *Autoscaler) Status() Status {
	a.mu.Lock()
	policies := append([]*policyState(nil), a.policies...)
	a.mu.Unlock()
	st := Status{Decisions: a.Decisions()}
	for _, ps := range policies {
		st.Policies = append(st.Policies, PolicyStatus{
			Chain:        ps.p.Chain,
			Role:         ps.p.Role,
			State:        a.cfg.Evaluator.State(ps.p.Chain),
			Instances:    ps.instances,
			Min:          ps.p.MinInstances,
			Max:          ps.p.MaxInstances,
			BreachStreak: ps.breachStreak,
			ClearStreak:  ps.clearStreak,
			LastAction:   ps.lastAction,
		})
	}
	return st
}

// SetBeat installs a health-watchdog heartbeat called once per
// Reconcile pass (ticker-driven or direct). A nil beat disables it.
func (a *Autoscaler) SetBeat(beat func()) {
	a.mu.Lock()
	a.beat = beat
	a.mu.Unlock()
}

// Start launches the background reconcile ticker. Returns immediately;
// Stop halts it. Start after Stop restarts cleanly.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	a.stop, a.done = stop, done
	interval := a.cfg.Interval
	a.mu.Unlock()

	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				a.Reconcile(now)
			}
		}
	}()
}

// Stop halts the background ticker and waits for it to exit. No-op when
// not started.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
