package autoscale

import (
	"switchboard/internal/controller"
)

// GSExecutor executes scale actions through the Global Switchboard:
// instance allocation via the VNF controller, forwarder-set growth, TE
// recompute + route republish, and live flow migration (package
// controller's scale layer).
type GSExecutor struct {
	GS *controller.GlobalSwitchboard
}

// ScaleOut implements Executor.
func (e GSExecutor) ScaleOut(chain, role string, rate float64) (Outcome, error) {
	out, err := e.GS.ScaleChainVNF(controller.ChainID(chain), role, rate)
	return outcomeOf(out), err
}

// ScaleIn implements Executor.
func (e GSExecutor) ScaleIn(chain, role string, rate float64) (Outcome, error) {
	out, err := e.GS.ScaleInChainVNF(controller.ChainID(chain), role, rate)
	return outcomeOf(out), err
}

func outcomeOf(out *controller.ScaleOutcome) Outcome {
	if out == nil {
		return Outcome{}
	}
	return Outcome{
		Instances:   out.Instances,
		FlowsMoved:  out.Migration.Flows,
		PacketsLost: out.Migration.Lost,
	}
}
