package autoscale

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/slo"
	"switchboard/internal/testutil"
)

// fakeExec records scale calls and plays back canned outcomes.
type fakeExec struct {
	mu   sync.Mutex
	outs []string // "out:<chain>/<role>" / "in:<chain>/<role>"
	n    int      // simulated instance count
	err  error
}

func (f *fakeExec) ScaleOut(chain, role string, rate float64) (Outcome, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return Outcome{}, f.err
	}
	f.n++
	f.outs = append(f.outs, "out:"+chain+"/"+role)
	return Outcome{Instances: f.n, FlowsMoved: 3, PacketsLost: 0}, nil
}

func (f *fakeExec) ScaleIn(chain, role string, rate float64) (Outcome, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return Outcome{}, f.err
	}
	f.n--
	f.outs = append(f.outs, "in:"+chain+"/"+role)
	return Outcome{Instances: f.n, FlowsMoved: 2}, nil
}

func (f *fakeExec) calls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.outs...)
}

// breachRig drives a real SLO evaluator into controlled breach states.
type breachRig struct {
	ev   *slo.Evaluator
	e2e  *metrics.Histogram
	mu   sync.Mutex
	sent uint64
	dlvd uint64
}

func newBreachRig(t *testing.T) *breachRig {
	t.Helper()
	r := &breachRig{
		ev:  slo.New(slo.Config{FireAfter: 1, ResolveAfter: 1}),
		e2e: metrics.NewHistogram(),
	}
	r.ev.Track(slo.ChainSLO{
		Chain:     "c1",
		Budget:    time.Millisecond,
		E2E:       r.e2e,
		Sent:      func() uint64 { r.mu.Lock(); defer r.mu.Unlock(); return r.sent },
		Delivered: func() uint64 { r.mu.Lock(); defer r.mu.Unlock(); return r.dlvd },
	})
	return r
}

// latencyBreach makes the next Evaluate see an over-budget interval.
func (r *breachRig) latencyBreach() { r.e2e.Observe(10 * time.Millisecond) }

// clearInterval makes the next Evaluate see an in-budget interval.
func (r *breachRig) clearInterval() { r.e2e.Observe(10 * time.Microsecond) }

// lossBreach makes the next Evaluate see sent traffic that never
// delivered (and keeps latency quiet).
func (r *breachRig) lossBreach() {
	r.mu.Lock()
	r.sent += 100
	r.mu.Unlock()
}

func newScaler(t *testing.T, rig *breachRig, exec Executor, cfg Config) *Autoscaler {
	t.Helper()
	cfg.Evaluator = rig.ev
	cfg.Executor = exec
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestScaleOutOnLatencyBreach(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 2, Cooldown: time.Millisecond})
	a.Add(Policy{Chain: "c1", Role: "nat", MaxInstances: 4}, 1)

	now := time.Unix(1000, 0)
	rig.latencyBreach()
	rig.ev.Evaluate(now)
	if got := rig.ev.State("c1"); got != slo.StateFiring {
		t.Fatalf("evaluator state = %q, want firing", got)
	}

	// First reconcile pass: breach streak 1 < ScaleOutAfter, no action.
	a.Reconcile(now)
	if calls := exec.calls(); len(calls) != 0 {
		t.Fatalf("acted on first pass: %v", calls)
	}
	// Second pass: act.
	now = now.Add(100 * time.Millisecond)
	a.Reconcile(now)
	calls := exec.calls()
	if len(calls) != 1 || calls[0] != "out:c1/nat" {
		t.Fatalf("calls = %v, want [out:c1/nat]", calls)
	}
	ds := a.Decisions()
	if len(ds) != 1 || ds[0].Action != ActionScaleOut || ds[0].FlowsMoved != 3 {
		t.Fatalf("decisions = %+v", ds)
	}
	if a.decisionsN.Load() != 1 || a.migrations.Load() != 1 || a.flowsMoved.Load() != 3 {
		t.Fatalf("metrics: decisions=%d migrations=%d flows=%d",
			a.decisionsN.Load(), a.migrations.Load(), a.flowsMoved.Load())
	}
}

func TestLossBreachIsFailoversDomain(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 1})
	a.Add(Policy{Chain: "c1", Role: "nat"}, 1)

	now := time.Unix(1000, 0)
	rig.lossBreach()
	rig.ev.Evaluate(now)
	for i := 0; i < 5; i++ {
		now = now.Add(100 * time.Millisecond)
		a.Reconcile(now)
	}
	if calls := exec.calls(); len(calls) != 0 {
		t.Fatalf("scaled on a loss-only breach: %v", calls)
	}
	ds := a.Decisions()
	if len(ds) != 1 || ds[0].Action != ActionSkipLoss || ds[0].Reason != "loss" {
		t.Fatalf("decisions = %+v, want one skip-loss", ds)
	}
}

func TestCooldownAndMaxBound(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 1, Cooldown: time.Second})
	a.Add(Policy{Chain: "c1", Role: "nat", MaxInstances: 2}, 1)

	now := time.Unix(1000, 0)
	rig.latencyBreach()
	rig.ev.Evaluate(now)
	a.Reconcile(now)
	if len(exec.calls()) != 1 {
		t.Fatalf("first breach should act: %v", exec.calls())
	}
	// Still firing, inside cooldown: no second action.
	now = now.Add(10 * time.Millisecond)
	a.Reconcile(now)
	if len(exec.calls()) != 1 {
		t.Fatalf("acted inside cooldown: %v", exec.calls())
	}
	// Past cooldown but at MaxInstances: still no action.
	now = now.Add(2 * time.Second)
	a.Reconcile(now)
	if len(exec.calls()) != 1 {
		t.Fatalf("acted beyond MaxInstances: %v", exec.calls())
	}
}

func TestScaleInAfterSustainedClear(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 1, ScaleInAfter: 3, Cooldown: time.Millisecond})
	a.Add(Policy{Chain: "c1", Role: "nat", MinInstances: 1, MaxInstances: 4}, 1)

	now := time.Unix(1000, 0)
	rig.latencyBreach()
	rig.ev.Evaluate(now)
	a.Reconcile(now)
	if len(exec.calls()) != 1 {
		t.Fatalf("expected scale-out first: %v", exec.calls())
	}

	// Resolve the alert, then stay clear for ScaleInAfter passes.
	rig.clearInterval()
	now = now.Add(100 * time.Millisecond)
	rig.ev.Evaluate(now)
	if got := rig.ev.State("c1"); got != slo.StateOK {
		t.Fatalf("evaluator state = %q, want ok", got)
	}
	for i := 0; i < 3; i++ {
		now = now.Add(100 * time.Millisecond)
		a.Reconcile(now)
	}
	calls := exec.calls()
	if len(calls) != 2 || calls[1] != "in:c1/nat" {
		t.Fatalf("calls = %v, want scale-in after sustained clear", calls)
	}
	// Back at MinInstances: further clear passes must not act.
	for i := 0; i < 5; i++ {
		now = now.Add(100 * time.Millisecond)
		a.Reconcile(now)
	}
	if len(exec.calls()) != 2 {
		t.Fatalf("shrank below MinInstances: %v", exec.calls())
	}
}

func TestTimeToResolveObserved(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 1, Cooldown: time.Millisecond})
	a.Add(Policy{Chain: "c1", Role: "nat", MaxInstances: 4}, 1)

	now := time.Unix(1000, 0)
	rig.latencyBreach()
	rig.ev.Evaluate(now)
	a.Reconcile(now)

	// The alert resolves 250ms after it fired.
	rig.clearInterval()
	resolved := now.Add(250 * time.Millisecond)
	rig.ev.Evaluate(resolved)
	a.Reconcile(resolved)

	count, sum := a.resolveMs.CountSum()
	if count != 1 {
		t.Fatalf("time_to_resolve samples = %d, want 1", count)
	}
	if sum != 250*time.Millisecond {
		t.Fatalf("time_to_resolve = %v, want 250ms", sum)
	}
}

func TestExecutorErrorKeepsPolicyRetrying(t *testing.T) {
	rig := newBreachRig(t)
	exec := &fakeExec{n: 1, err: errors.New("no capacity")}
	a := newScaler(t, rig, exec, Config{ScaleOutAfter: 1, Cooldown: time.Millisecond})
	a.Add(Policy{Chain: "c1", Role: "nat", MaxInstances: 4}, 1)

	now := time.Unix(1000, 0)
	rig.latencyBreach()
	rig.ev.Evaluate(now)
	a.Reconcile(now)
	ds := a.Decisions()
	if len(ds) != 1 || ds[0].Err == "" {
		t.Fatalf("decisions = %+v, want one failed scale-out", ds)
	}
	st := a.Status()
	if len(st.Policies) != 1 || st.Policies[0].Instances != 1 {
		t.Fatalf("status = %+v, want instance count unchanged on error", st.Policies)
	}

	// Executor recovers; the still-firing alert triggers a retry after
	// the cooldown.
	exec.mu.Lock()
	exec.err = nil
	exec.mu.Unlock()
	rig.latencyBreach()
	now = now.Add(100 * time.Millisecond)
	rig.ev.Evaluate(now)
	a.Reconcile(now)
	calls := exec.calls()
	if len(calls) != 1 || calls[0] != "out:c1/nat" {
		t.Fatalf("calls = %v, want retry after executor recovery", calls)
	}
}

func TestRegisterMetricsNames(t *testing.T) {
	rig := newBreachRig(t)
	a := newScaler(t, rig, &fakeExec{}, Config{})
	r := metrics.NewRegistry()
	a.RegisterMetrics(r)
	for _, name := range []string{
		"autoscale.decisions", "autoscale.migrations",
		"migrate.flows_moved", "migrate.packets_lost",
		"autoscale.time_to_resolve_ms",
	} {
		found := false
		for _, n := range r.Names() {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("metric %s not registered (have %v)", name, r.Names())
		}
	}
}

func TestBeatAndStartStopNoLeaks(t *testing.T) {
	testutil.NoLeaks(t)
	rig := newBreachRig(t)
	a := newScaler(t, rig, &fakeExec{n: 1}, Config{Interval: time.Millisecond})

	var beats atomic.Uint64
	a.SetBeat(func() { beats.Add(1) })

	// Direct Reconcile beats once per pass.
	a.Reconcile(time.Unix(1000, 0))
	if beats.Load() != 1 {
		t.Fatalf("beats after direct Reconcile = %d, want 1", beats.Load())
	}

	// The background ticker beats too, and Stop leaves no goroutine
	// behind (NoLeaks enforces it at cleanup).
	a.Start()
	if !testutil.Poll(time.Second, func() bool { return beats.Load() > 1 }) {
		t.Fatal("ticker-driven Reconcile never beat")
	}
	a.Stop()
}
