package introspect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"switchboard/internal/health"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
)

func TestHealthzAggregated(t *testing.T) {
	reg := metrics.NewRegistry()
	wd := health.NewWatchdog(health.WatchdogConfig{})
	h := &health.Health{
		Vitals:   health.NewVitals(time.Hour),
		Watchdog: wd,
	}
	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, Health: h}))
	defer srv.Close()

	getStatus := func() (int, health.Status) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st health.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	code, st := getStatus()
	if code != http.StatusOK || !st.Healthy {
		t.Fatalf("healthy system: code=%d healthy=%v", code, st.Healthy)
	}
	if st.Goroutines < 1 {
		t.Fatal("vitals missing from /healthz")
	}

	// Stall a component: /healthz must flip to 503 with the component
	// visible.
	hb := wd.Register("bus", 10*time.Millisecond)
	wd.Check(time.Now().Add(time.Second))
	code, st = getStatus()
	if code != http.StatusServiceUnavailable || st.Healthy {
		t.Fatalf("stalled system: code=%d healthy=%v", code, st.Healthy)
	}
	if len(st.Components) != 1 || st.Components[0].Name != "bus" || !st.Components[0].Stalled {
		t.Fatalf("components = %+v", st.Components)
	}

	// Recovery flips it back.
	hb.Beat()
	wd.Check(time.Now())
	code, st = getStatus()
	if code != http.StatusOK || !st.Healthy {
		t.Fatalf("recovered system: code=%d healthy=%v", code, st.Healthy)
	}
}

// TestFlightBundleFromInjectedStall pins the acceptance path: an
// injected watchdog stall triggers a flight dump, and the bundle is
// retrievable over /debug/flight with the triggering stall event
// inside the dumped window.
func TestFlightBundleFromInjectedStall(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := obs.NewRecorder(256, 256, reg)
	hist := metrics.NewHistory(reg, time.Second, time.Minute)

	flight := health.NewFlightRecorder(health.FlightConfig{
		Window:   30 * time.Second,
		Registry: reg,
		History:  hist,
		Recorder: rec,
	})
	wd := health.NewWatchdog(health.WatchdogConfig{
		Recorder: rec,
		OnStall: func(component string, silentFor time.Duration) {
			flight.Trigger("watchdog-stall", fmt.Sprintf("%s silent %v", component, silentFor))
		},
	})
	h := &health.Health{Watchdog: wd, Flight: flight}
	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, Health: h, Flight: flight}))
	defer srv.Close()

	// Some activity for the bundle to capture.
	reg.Counter("test.hits").Add(7)
	hist.Sample()
	sp := rec.Start("test.op", "", 0)
	sp.End()

	// Inject the stall: a registered component goes silent past its
	// threshold.
	wd.Register("detector", 10*time.Millisecond)
	wd.Check(time.Now().Add(time.Second))

	// The bundle list must show the dump…
	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Dumps []health.DumpInfo `json:"dumps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Dumps) != 1 || list.Dumps[0].Reason != "watchdog-stall" {
		t.Fatalf("dump list = %+v, want one watchdog-stall dump", list.Dumps)
	}

	// …and the full bundle must contain the triggering stall event.
	resp, err = http.Get(fmt.Sprintf("%s/debug/flight?id=%d", srv.URL, list.Dumps[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	var dump health.Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var sawTrigger bool
	for _, e := range dump.Events {
		if strings.Contains(e.Name, "detector stalled") {
			sawTrigger = true
		}
	}
	if !sawTrigger {
		t.Fatalf("bundle missing the triggering stall event; events: %+v", dump.Events)
	}
	if len(dump.Spans) == 0 || dump.Metrics == nil || dump.Metrics.Counters["test.hits"] != 7 {
		t.Fatalf("bundle not self-contained: spans=%d metrics=%v", len(dump.Spans), dump.Metrics)
	}
	if len(dump.HeapProfile) == 0 || dump.GoroutineStacks == "" {
		t.Fatal("bundle missing pprof profiles")
	}

	// Unknown and malformed ids.
	if resp, _ := http.Get(srv.URL + "/debug/flight?id=999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %s", resp.Status)
	}
	if resp, _ := http.Get(srv.URL + "/debug/flight?id=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: %s", resp.Status)
	}
}

func TestFlightTriggerPoke(t *testing.T) {
	flight := health.NewFlightRecorder(health.FlightConfig{
		MinInterval:     time.Minute,
		DisableProfiles: true,
	})
	srv := httptest.NewServer(HandlerOpts(Options{Registry: metrics.NewRegistry(), Flight: flight}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/debug/flight/trigger", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["id"] != 1 {
		t.Fatalf("poke: code=%d out=%v", resp.StatusCode, out)
	}

	// A second poke inside the debounce window is refused.
	resp, err = http.Post(srv.URL+"/debug/flight/trigger", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("debounced poke: %s", resp.Status)
	}
}

func TestHandlerHistorySince(t *testing.T) {
	reg := metrics.NewRegistry()
	var v float64
	reg.GaugeFunc("g", func() float64 { return v })
	hist := metrics.NewHistory(reg, time.Second, time.Minute)
	v = 1
	hist.Sample()
	time.Sleep(2 * time.Millisecond)
	cut := time.Now()
	time.Sleep(2 * time.Millisecond)
	v = 2
	hist.Sample()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, History: hist}))
	defer srv.Close()

	fetch := func(query string) (int, int) {
		resp, err := http.Get(srv.URL + "/metrics/history" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, 0
		}
		var dump metrics.HistoryDump
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, len(dump.Points)
	}

	if _, n := fetch(""); n != 2 {
		t.Fatalf("unfiltered points = %d, want 2", n)
	}
	// RFC 3339 and Unix-milliseconds forms of the same cut.
	if _, n := fetch("?since=" + cut.UTC().Format(time.RFC3339Nano)); n != 1 {
		t.Fatalf("since RFC3339 points = %d, want 1", n)
	}
	if _, n := fetch(fmt.Sprintf("?since=%d", cut.UnixMilli())); n != 1 {
		t.Fatalf("since unix-ms points = %d, want 1", n)
	}
	if code, _ := fetch("?since=yesterday"); code != http.StatusBadRequest {
		t.Fatalf("malformed since: code=%d, want 400", code)
	}
}
