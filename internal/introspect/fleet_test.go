package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/slo"
	"switchboard/internal/telemetry"
)

func newTestFleet() *telemetry.Aggregator {
	ag := telemetry.NewAggregator(telemetry.AggregatorConfig{})
	r := &telemetry.Report{
		Site:       "A",
		Seq:        1,
		IntervalNs: int64(time.Second),
		Healthy:    true,
		Counters:   map[string]uint64{"fwd.rx": 10},
		Hops: []telemetry.HopRecord{
			{TraceID: 3, Chain: "mesh", Node: "edge:c", ArriveNs: 100, DepartNs: 150},
			{TraceID: 3, Chain: "mesh", Node: "sink:s", ArriveNs: 500},
		},
	}
	ag.IngestAt(r, time.Now())
	return ag
}

func TestHandlerFleetRoutes(t *testing.T) {
	srv := httptest.NewServer(HandlerOpts(Options{Registry: newTestRegistry(), Fleet: newTestFleet()}))
	defer srv.Close()

	// /fleet: the JSON model.
	resp, err := http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var model telemetry.FleetModel
	if err := json.NewDecoder(resp.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(model.Sites) != 1 || model.Sites[0].Site != "A" || model.Sites[0].Status != "ok" {
		t.Fatalf("/fleet sites = %+v", model.Sites)
	}
	if len(model.Timelines) != 1 {
		t.Fatalf("/fleet timelines = %d, want 1", len(model.Timelines))
	}

	// /fleet/prom: site-labelled exposition.
	resp, err = http.Get(srv.URL + "/fleet/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `fwd_rx{site="A"} 10`) {
		t.Errorf("/fleet/prom missing site-labelled series:\n%s", body)
	}

	// /fleet/site drill-down, and its error paths.
	resp, err = http.Get(srv.URL + "/fleet/site?id=A")
	if err != nil {
		t.Fatal(err)
	}
	var detail telemetry.SiteDetail
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.Counters["fwd.rx"] != 10 {
		t.Errorf("/fleet/site counters = %+v", detail.Counters)
	}
	for path, want := range map[string]int{
		"/fleet/site":          http.StatusBadRequest,
		"/fleet/site?id=Z":     http.StatusNotFound,
		"/fleet/trace":         http.StatusBadRequest,
		"/fleet/trace?chain=x": http.StatusNotFound,
	} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, r2.StatusCode, want)
		}
	}

	// /fleet/trace: stitched timeline, default flow selection.
	resp, err = http.Get(srv.URL + "/fleet/trace?chain=mesh")
	if err != nil {
		t.Fatal(err)
	}
	var tl telemetry.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tl.TraceID != 3 || tl.E2ENs != 400 || len(tl.Hops) != 2 {
		t.Errorf("/fleet/trace = %+v", tl)
	}
}

func TestHandlerFleet404WhenUnwired(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	for _, path := range []string{"/fleet", "/fleet/prom", "/fleet/site?id=A", "/fleet/trace?chain=c"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without Fleet = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHandlerAlertsSince pins the ?since= incremental path the telemetry
// agent polls: only alerts that fired or resolved at or after the
// instant ship.
func TestHandlerAlertsSince(t *testing.T) {
	ev := slo.New(slo.Config{FireAfter: 1, ResolveAfter: 1})
	var oldDrops, newDrops uint64
	track := func(chain string, drops *uint64) {
		ev.Track(slo.ChainSLO{
			Chain:  chain,
			Budget: 10 * time.Millisecond,
			E2E:    metrics.NewHistogram(),
			Drops:  func() uint64 { return *drops },
		})
	}
	track("old", &oldDrops)
	track("new", &newDrops)

	t0 := time.Unix(1000, 0)
	oldDrops = 5
	ev.Evaluate(t0) // "old" fires at t0
	newDrops = 5
	ev.Evaluate(t0.Add(time.Hour)) // "new" fires at t0+1h; "old" resolves

	srv := httptest.NewServer(HandlerOpts(Options{Registry: newTestRegistry(), SLO: ev}))
	defer srv.Close()

	get := func(q string) []slo.Alert {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/alerts" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", q, resp.StatusCode)
		}
		var doc struct {
			Alerts []slo.Alert `json:"alerts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Alerts
	}

	if all := get(""); len(all) != 2 {
		t.Fatalf("full log = %d alerts, want 2", len(all))
	}
	// A cutoff between the two fire times keeps the new alert and the
	// old one too — it resolved after the cutoff, and resolutions are
	// state changes the poller needs.
	cut := t0.Add(30 * time.Minute)
	inc := get(fmt.Sprintf("?since=%d", cut.Unix()))
	if len(inc) != 2 {
		t.Fatalf("since=+30m = %d alerts, want 2 (new fire + old resolve)", len(inc))
	}
	// A cutoff past everything ships nothing.
	if late := get(fmt.Sprintf("?since=%d", t0.Add(2*time.Hour).Unix())); len(late) != 0 {
		t.Errorf("since=+2h = %d alerts, want 0", len(late))
	}
	// RFC 3339 works too.
	if rfc := get("?since=" + cut.UTC().Format(time.RFC3339)); len(rfc) != 2 {
		t.Errorf("RFC3339 since = %d alerts, want 2", len(rfc))
	}
	// Malformed cutoffs are a 400, not a silent full log.
	resp, err := http.Get(srv.URL + "/debug/alerts?since=yesterdayish")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", resp.StatusCode)
	}
}
