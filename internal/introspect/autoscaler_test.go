package introspect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"switchboard/internal/autoscale"
	"switchboard/internal/metrics"
	"switchboard/internal/slo"
)

type nopExec struct{}

func (nopExec) ScaleOut(string, string, float64) (autoscale.Outcome, error) {
	return autoscale.Outcome{}, nil
}
func (nopExec) ScaleIn(string, string, float64) (autoscale.Outcome, error) {
	return autoscale.Outcome{}, nil
}

func TestAutoscalerRoute(t *testing.T) {
	ev := slo.New(slo.Config{})
	ev.Track(slo.ChainSLO{Chain: "web", Budget: time.Millisecond, E2E: metrics.NewHistogram()})
	a, err := autoscale.New(autoscale.Config{Evaluator: ev, Executor: nopExec{}})
	if err != nil {
		t.Fatal(err)
	}
	a.Add(autoscale.Policy{Chain: "web", Role: "nat", MaxInstances: 3}, 1)

	h := HandlerOpts(Options{Registry: metrics.NewRegistry(), Autoscaler: a})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/autoscaler", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /autoscaler = %d, want 200", rr.Code)
	}
	var st autoscale.Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(st.Policies) != 1 || st.Policies[0].Chain != "web" || st.Policies[0].Instances != 1 {
		t.Fatalf("status = %+v", st)
	}

	// Without an Autoscaler the route must 404, like the other optional
	// routes.
	h = HandlerOpts(Options{Registry: metrics.NewRegistry()})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/autoscaler", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("GET /autoscaler without autoscaler = %d, want 404", rr.Code)
	}
}
