package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"switchboard/internal/metrics"
)

func newTestRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("test.hits").Add(42)
	reg.GaugeFunc("test.load", func() float64 { return 1.5 })
	reg.Histogram("test.latency").Observe(3 * time.Millisecond)
	return reg
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.hits"] != 42 {
		t.Errorf("test.hits = %d, want 42", snap.Counters["test.hits"])
	}
	if snap.Gauges["test.load"] != 1.5 {
		t.Errorf("test.load = %v, want 1.5", snap.Gauges["test.load"])
	}
	if h, ok := snap.Histograms["test.latency"]; !ok || h.Count != 1 {
		t.Errorf("test.latency = %+v, want count 1", h)
	}
}

func TestHandlerHealthzAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s (%s)", path, resp.Status, body)
		}
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz via Serve: %s", resp.Status)
	}
}
