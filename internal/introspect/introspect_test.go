package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
)

func newTestRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("test.hits").Add(42)
	reg.GaugeFunc("test.load", func() float64 { return 1.5 })
	reg.Histogram("test.latency").Observe(3 * time.Millisecond)
	return reg
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.hits"] != 42 {
		t.Errorf("test.hits = %d, want 42", snap.Counters["test.hits"])
	}
	if snap.Gauges["test.load"] != 1.5 {
		t.Errorf("test.load = %v, want 1.5", snap.Gauges["test.load"])
	}
	if h, ok := snap.Histograms["test.latency"]; !ok || h.Count != 1 {
		t.Errorf("test.latency = %+v, want count 1", h)
	}
}

func TestHandlerMetricsPrefixFilter(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?prefix=test.h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.hits"] != 42 {
		t.Errorf("test.hits = %d, want 42", snap.Counters["test.hits"])
	}
	if len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("prefix filter leaked: gauges=%v histograms=%v", snap.Gauges, snap.Histograms)
	}

	// A prefix matching nothing yields an empty-but-valid snapshot.
	resp2, err := http.Get(srv.URL + "/metrics?prefix=nomatch.")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty metrics.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Errorf("nomatch prefix returned entries: %+v", empty)
	}
}

func TestHandlerEvents(t *testing.T) {
	reg := newTestRegistry()
	rec := obs.NewRecorder(0, 0, reg)
	sp := rec.Start("test.op", "test.op_ms", 0)
	sp.Event("step one")
	sp.End()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, Events: rec}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SpansCompleted != 1 || len(snap.Spans) != 1 {
		t.Fatalf("snapshot = %+v, want one completed span", snap)
	}
	if snap.Spans[0].Name != "test.op" || len(snap.Spans[0].Events) != 1 {
		t.Errorf("span = %+v", snap.Spans[0])
	}
}

func TestHandlerHistory(t *testing.T) {
	reg := newTestRegistry()
	h := metrics.NewHistory(reg, time.Second, time.Minute)
	h.Sample()
	reg.Counter("test.ticks").Inc() // change the registry: idle dedup skips identical samples
	h.Sample()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, History: h}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump metrics.HistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.IntervalMs != 1000 {
		t.Errorf("IntervalMs = %d, want 1000", dump.IntervalMs)
	}
	if len(dump.Points) != 2 {
		t.Fatalf("got %d history points, want 2", len(dump.Points))
	}
	if dump.Points[0].Counters["test.hits"] != 42 {
		t.Errorf("point counter = %d, want 42", dump.Points[0].Counters["test.hits"])
	}
}

func TestHandlerOptionalRoutes404WhenUnwired(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	for _, path := range []string{"/debug/events", "/metrics/history", "/slo", "/debug/alerts"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without wiring = %s, want 404", path, resp.Status)
		}
	}
}

func TestHandlerHealthzAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s (%s)", path, resp.Status, body)
		}
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz via Serve: %s", resp.Status)
	}
}

func TestHandlerPrometheus(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE test_hits counter",
		"test_hits 42",
		"# TYPE test_load gauge",
		"test_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q; got:\n%s", want, text)
		}
	}

	// ?prefix= narrows the exposition like /metrics.
	resp2, err := http.Get(srv.URL + "/metrics/prom?prefix=test.hits")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if text2 := string(body2); !strings.Contains(text2, "test_hits 42") || strings.Contains(text2, "test_load") {
		t.Errorf("filtered prom exposition wrong:\n%s", text2)
	}
}

func TestHandlerHistoryPrefix(t *testing.T) {
	reg := newTestRegistry()
	h := metrics.NewHistory(reg, time.Second, time.Minute)
	h.Sample()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, History: h}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/history?prefix=test.hits")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump metrics.HistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Points) != 1 {
		t.Fatalf("got %d history points, want 1", len(dump.Points))
	}
	p := dump.Points[0]
	if p.Counters["test.hits"] != 42 {
		t.Errorf("filtered point lost test.hits: %+v", p)
	}
	if len(p.Gauges) != 0 || len(p.Histograms) != 0 {
		t.Errorf("prefix filter leaked other series: %+v", p)
	}
}

func TestHandlerEventsLimitClamped(t *testing.T) {
	reg := newTestRegistry()
	rec := obs.NewRecorder(16, 16, reg)
	for i := 0; i < 5; i++ {
		rec.Start("test.op", "", 0).End()
		rec.Log("test.event")
	}

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, Events: rec}))
	defer srv.Close()

	get := func(query string) obs.Snapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	if snap := get("?limit=2"); len(snap.Spans) != 2 || len(snap.Events) != 2 {
		t.Errorf("limit=2 kept %d spans / %d events, want 2/2", len(snap.Spans), len(snap.Events))
	} else if snap.SpansCompleted != 5 {
		t.Errorf("cumulative totals must survive the limit: %+v", snap)
	}
	// A limit past the ring bound clamps to what the ring retains.
	if snap := get("?limit=99999"); len(snap.Spans) != 5 || len(snap.Events) != 5 {
		t.Errorf("oversized limit kept %d spans / %d events, want 5/5", len(snap.Spans), len(snap.Events))
	}
	// Invalid and non-positive limits keep everything.
	if snap := get("?limit=bogus"); len(snap.Spans) != 5 {
		t.Errorf("invalid limit dropped spans: %d", len(snap.Spans))
	}
	if snap := get("?limit=-3"); len(snap.Spans) != 5 {
		t.Errorf("negative limit dropped spans: %d", len(snap.Spans))
	}
}

func TestHandlerSLORoutes(t *testing.T) {
	reg := newTestRegistry()
	ev := slo.New(slo.Config{FireAfter: 1, ResolveAfter: 1})
	var drops uint64
	ev.Track(slo.ChainSLO{
		Chain:  "c1",
		Budget: 10 * time.Millisecond,
		E2E:    metrics.NewHistogram(),
		Drops:  func() uint64 { return drops },
	})
	drops = 5
	ev.Evaluate(time.Now())

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, SLO: ev}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Firing int               `json:"firing"`
		Chains []slo.ChainStatus `json:"chains"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Firing != 1 || len(status.Chains) != 1 {
		t.Fatalf("/slo = %+v, want one firing chain", status)
	}
	if c := status.Chains[0]; c.Chain != "c1" || c.State != slo.StateFiring || c.BudgetMs != 10 {
		t.Errorf("chain status = %+v", c)
	}

	resp2, err := http.Get(srv.URL + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var alog struct {
		Firing int         `json:"firing"`
		Alerts []slo.Alert `json:"alerts"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&alog); err != nil {
		t.Fatal(err)
	}
	if alog.Firing != 1 || len(alog.Alerts) != 1 {
		t.Fatalf("/debug/alerts = %+v, want one firing alert", alog)
	}
	if a := alog.Alerts[0]; a.Chain != "c1" || a.Reason != "drops" || a.FiredAt.IsZero() {
		t.Errorf("alert = %+v", a)
	}
}
