package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
)

func newTestRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("test.hits").Add(42)
	reg.GaugeFunc("test.load", func() float64 { return 1.5 })
	reg.Histogram("test.latency").Observe(3 * time.Millisecond)
	return reg
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.hits"] != 42 {
		t.Errorf("test.hits = %d, want 42", snap.Counters["test.hits"])
	}
	if snap.Gauges["test.load"] != 1.5 {
		t.Errorf("test.load = %v, want 1.5", snap.Gauges["test.load"])
	}
	if h, ok := snap.Histograms["test.latency"]; !ok || h.Count != 1 {
		t.Errorf("test.latency = %+v, want count 1", h)
	}
}

func TestHandlerMetricsPrefixFilter(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?prefix=test.h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.hits"] != 42 {
		t.Errorf("test.hits = %d, want 42", snap.Counters["test.hits"])
	}
	if len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("prefix filter leaked: gauges=%v histograms=%v", snap.Gauges, snap.Histograms)
	}

	// A prefix matching nothing yields an empty-but-valid snapshot.
	resp2, err := http.Get(srv.URL + "/metrics?prefix=nomatch.")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty metrics.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Errorf("nomatch prefix returned entries: %+v", empty)
	}
}

func TestHandlerEvents(t *testing.T) {
	reg := newTestRegistry()
	rec := obs.NewRecorder(0, 0, reg)
	sp := rec.Start("test.op", "test.op_ms", 0)
	sp.Event("step one")
	sp.End()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, Events: rec}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SpansCompleted != 1 || len(snap.Spans) != 1 {
		t.Fatalf("snapshot = %+v, want one completed span", snap)
	}
	if snap.Spans[0].Name != "test.op" || len(snap.Spans[0].Events) != 1 {
		t.Errorf("span = %+v", snap.Spans[0])
	}
}

func TestHandlerHistory(t *testing.T) {
	reg := newTestRegistry()
	h := metrics.NewHistory(reg, time.Second, time.Minute)
	h.Sample()
	h.Sample()

	srv := httptest.NewServer(HandlerOpts(Options{Registry: reg, History: h}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump metrics.HistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.IntervalMs != 1000 {
		t.Errorf("IntervalMs = %d, want 1000", dump.IntervalMs)
	}
	if len(dump.Points) != 2 {
		t.Fatalf("got %d history points, want 2", len(dump.Points))
	}
	if dump.Points[0].Counters["test.hits"] != 42 {
		t.Errorf("point counter = %d, want 42", dump.Points[0].Counters["test.hits"])
	}
}

func TestHandlerOptionalRoutes404WhenUnwired(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()
	for _, path := range []string{"/debug/events", "/metrics/history"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without wiring = %s, want 404", path, resp.Status)
		}
	}
}

func TestHandlerHealthzAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(newTestRegistry()))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s (%s)", path, resp.Status, body)
		}
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz via Serve: %s", resp.Status)
	}
}
