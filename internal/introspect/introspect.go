// Package introspect exposes a process's metrics registry over HTTP for
// runtime inspection — an expvar-style debug listener. The endpoint is
// strictly opt-in: nothing listens unless a command is started with a
// -listen flag, and the handler only reads registry snapshots, so it
// never perturbs the data path.
//
// Routes:
//
//	/metrics       JSON metrics.Snapshot of the registry
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutines, ...)
package introspect

import (
	"net"
	"net/http"
	"net/http/pprof"

	"switchboard/internal/metrics"
)

// Handler returns an http.Handler serving the registry. Safe for
// concurrent use; each /metrics request takes a fresh snapshot.
func Handler(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	// pprof registers on http.DefaultServeMux via its init; rebind the
	// handlers explicitly so this mux works standalone.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug listener on addr (e.g. "localhost:6060") and
// returns the bound address — useful with a ":0" addr — and a function
// that shuts the listener down. The server runs on a background
// goroutine; serve errors after Close are ignored.
func Serve(addr string, reg *metrics.Registry) (bound string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
