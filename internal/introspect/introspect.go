// Package introspect exposes a process's metrics registry over HTTP for
// runtime inspection — an expvar-style debug listener. The endpoint is
// strictly opt-in: nothing listens unless a command is started with a
// -listen flag, and the handler only reads registry snapshots, so it
// never perturbs the data path.
//
// Routes:
//
//	/metrics          JSON metrics.Snapshot of the registry;
//	                  ?prefix=bus. filters to names with that prefix
//	/metrics/prom     the same snapshot in Prometheus text format
//	                  (flat and keyed series alike)
//	/metrics/history  JSON time-series ring of periodic snapshots
//	                  (only when a History is wired in via Options);
//	                  ?prefix= filters every point like /metrics, and
//	                  ?since= (RFC 3339 or Unix seconds/milliseconds)
//	                  keeps only points captured at or after the instant
//	/debug/events     JSON control-plane span/event log
//	                  (only when a Recorder is wired in via Options);
//	                  ?limit=N keeps the newest N spans and events,
//	                  clamped to the ring bound
//	/slo              JSON per-chain SLO compliance: budget, p50/p99,
//	                  error-budget burn, alert state
//	                  (only when an Evaluator is wired in via Options)
//	/debug/alerts     JSON alert log: fired/resolved SLO breaches;
//	                  ?since= (RFC 3339 or Unix seconds/milliseconds)
//	                  keeps only alerts that fired or resolved at or
//	                  after the instant — the telemetry agent's
//	                  incremental poll
//	/fleet            fleet model merged from site telemetry reports
//	                  (only when an Aggregator is wired in via Options):
//	                  JSON rollups + health matrix; /fleet/prom for the
//	                  fleet-wide Prometheus view with site labels,
//	                  /fleet/site?id= for one site's drill-down,
//	                  /fleet/trace?chain= for stitched cross-site
//	                  timelines
//	/autoscaler       JSON autoscaler view: per-policy instance counts,
//	                  streaks, and the scale-decision log
//	                  (only when an Autoscaler is wired in via Options)
//	/healthz          aggregated process health when a health.Health is
//	                  wired in via Options: JSON watchdog/leak/vitals
//	                  status, 200 while healthy and 503 while any
//	                  component is stalled or a leak verdict is active;
//	                  plain "ok" otherwise (the legacy liveness probe)
//	/debug/flight     flight-recorder bundles (only when a FlightRecorder
//	                  is wired in via Options): the bundle list, ?id=N
//	                  for one full dump, and POST /debug/flight/trigger
//	                  to poke a dump by hand
//	/debug/pprof/     net/http/pprof profiles (CPU, heap, goroutines, ...)
package introspect

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"switchboard/internal/autoscale"
	"switchboard/internal/health"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
	"switchboard/internal/telemetry"
)

// Options selects what a debug listener exposes. Registry is required;
// History, Events, and SLO are optional — their routes return 404 when
// nil.
type Options struct {
	// Registry backs /metrics and /metrics/prom.
	Registry *metrics.Registry
	// History backs /metrics/history: a started metrics.History sampling
	// the same registry.
	History *metrics.History
	// Events backs /debug/events: the control-plane span recorder.
	Events *obs.Recorder
	// SLO backs /slo and /debug/alerts: the per-chain SLO evaluator.
	SLO *slo.Evaluator
	// Autoscaler backs /autoscaler: the reconciler's policies and its
	// decision log.
	Autoscaler *autoscale.Autoscaler
	// Health upgrades /healthz from the static liveness probe to the
	// aggregated watchdog + leak-detector + vitals view with 200/503
	// semantics.
	Health *health.Health
	// Flight backs /debug/flight: the black-box flight recorder's
	// bundle list, per-bundle retrieval, and the manual trigger.
	Flight *health.FlightRecorder
	// Fleet backs the /fleet route family: the GS-side telemetry
	// aggregator's fleet model, site drill-downs, stitched timelines,
	// and the fleet-wide Prometheus view.
	Fleet *telemetry.Aggregator
}

// Handler returns an http.Handler serving the registry. Safe for
// concurrent use; each /metrics request takes a fresh snapshot.
func Handler(reg *metrics.Registry) http.Handler {
	return HandlerOpts(Options{Registry: reg})
}

// sloStatus is the JSON document served at /slo.
type sloStatus struct {
	// Firing is how many chains are currently in the firing state.
	Firing int `json:"firing"`
	// Chains is every tracked chain's compliance view.
	Chains []slo.ChainStatus `json:"chains"`
}

// alertLog is the JSON document served at /debug/alerts.
type alertLog struct {
	// Firing is how many chains are currently in the firing state.
	Firing int `json:"firing"`
	// Alerts is the bounded alert log, oldest first.
	Alerts []slo.Alert `json:"alerts"`
}

// HandlerOpts returns an http.Handler serving everything selected by
// opts. Safe for concurrent use; every request reads a fresh snapshot
// of the underlying source.
func HandlerOpts(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := opts.Registry.Snapshot()
		if p := r.URL.Query().Get("prefix"); p != "" {
			snap = snap.Filter(p)
		}
		data, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, data)
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		snap := opts.Registry.Snapshot()
		if p := r.URL.Query().Get("prefix"); p != "" {
			snap = snap.Filter(p)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
	if opts.History != nil {
		mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
			var since time.Time
			if q := r.URL.Query().Get("since"); q != "" {
				var ok bool
				if since, ok = parseSince(q); !ok {
					http.Error(w, "bad since: want RFC 3339 or Unix seconds/milliseconds", http.StatusBadRequest)
					return
				}
			}
			data, err := opts.History.JSONFilteredSince(r.URL.Query().Get("prefix"), since)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
	}
	if opts.Events != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			snap := opts.Events.Snapshot()
			if q := r.URL.Query().Get("limit"); q != "" {
				// A limit beyond the ring bound is clamped to what the
				// ring retains; invalid or non-positive keeps everything.
				if n, err := strconv.Atoi(q); err == nil && n > 0 {
					if n < len(snap.Spans) {
						snap.Spans = snap.Spans[len(snap.Spans)-n:]
					}
					if n < len(snap.Events) {
						snap.Events = snap.Events[len(snap.Events)-n:]
					}
				}
			}
			data, err := snap.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
	}
	if opts.SLO != nil {
		mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
			doc := sloStatus{
				Firing: opts.SLO.Firing(),
				Chains: opts.SLO.Status(),
			}
			data, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
		mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, r *http.Request) {
			alerts := opts.SLO.Alerts()
			if q := r.URL.Query().Get("since"); q != "" {
				since, ok := parseSince(q)
				if !ok {
					http.Error(w, "bad since: want RFC 3339 or Unix seconds/milliseconds", http.StatusBadRequest)
					return
				}
				alerts = opts.SLO.AlertsSince(since)
			}
			doc := alertLog{
				Firing: opts.SLO.Firing(),
				Alerts: alerts,
			}
			data, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
	}
	if opts.Autoscaler != nil {
		mux.HandleFunc("/autoscaler", func(w http.ResponseWriter, _ *http.Request) {
			data, err := json.MarshalIndent(opts.Autoscaler.Status(), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Health == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		st := opts.Health.Status(time.Now())
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
	})
	if opts.Flight != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
			if q := r.URL.Query().Get("id"); q != "" {
				id, err := strconv.Atoi(q)
				if err != nil {
					http.Error(w, "bad id", http.StatusBadRequest)
					return
				}
				d, ok := opts.Flight.Dump(id)
				if !ok {
					http.Error(w, "no such dump", http.StatusNotFound)
					return
				}
				data, err := json.MarshalIndent(d, "", "  ")
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				writeJSON(w, data)
				return
			}
			doc := flightList{Dumps: opts.Flight.Dumps()}
			if doc.Dumps == nil {
				doc.Dumps = []health.DumpInfo{}
			}
			data, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
		mux.HandleFunc("/debug/flight/trigger", func(w http.ResponseWriter, r *http.Request) {
			d, ok := opts.Flight.Trigger("http-poke", r.RemoteAddr)
			if !ok {
				http.Error(w, "debounced: a dump was just taken", http.StatusTooManyRequests)
				return
			}
			data, err := json.MarshalIndent(map[string]int{"id": d.ID}, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, data)
		})
	}
	if opts.Fleet != nil {
		registerFleet(mux, opts.Fleet)
	}
	// pprof registers on http.DefaultServeMux via its init; rebind the
	// handlers explicitly so this mux works standalone.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// flightList is the JSON document served at /debug/flight.
type flightList struct {
	// Dumps summarises the retained bundles, oldest first; fetch one in
	// full with ?id=.
	Dumps []health.DumpInfo `json:"dumps"`
}

// parseSince accepts the ?since= forms: RFC 3339 timestamps, Unix
// seconds, or Unix milliseconds (values past 1e12 are read as ms).
func parseSince(q string) (time.Time, bool) {
	if t, err := time.Parse(time.RFC3339, q); err == nil {
		return t, true
	}
	if n, err := strconv.ParseInt(q, 10, 64); err == nil {
		if n > 1e12 {
			return time.UnixMilli(n), true
		}
		return time.Unix(n, 0), true
	}
	return time.Time{}, false
}

func writeJSON(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	_, _ = w.Write([]byte("\n"))
}

// Serve starts the debug listener on addr (e.g. "localhost:6060") and
// returns the bound address — useful with a ":0" addr — and a function
// that shuts the listener down. The server runs on a background
// goroutine; serve errors after Close are ignored.
func Serve(addr string, reg *metrics.Registry) (bound string, close func(), err error) {
	return ServeOpts(addr, Options{Registry: reg})
}

// ServeOpts is Serve with the full route selection of Options.
func ServeOpts(addr string, opts Options) (bound string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerOpts(opts)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
