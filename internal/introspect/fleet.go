package introspect

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"switchboard/internal/telemetry"
)

// registerFleet mounts the /fleet route family on mux:
//
//	/fleet            JSON fleet model: per-site rollups, the health
//	                  matrix verdicts, per-chain cross-site aggregates,
//	                  and stitched timelines
//	/fleet/prom       fleet-wide Prometheus exposition — every site's
//	                  series with a site label, keyed families folded
//	                  to their key label
//	/fleet/site?id=   one site's drill-down: cumulative counters,
//	                  latest gauges and histograms, retained
//	                  spans/events/alerts
//	/fleet/trace?chain=[&trace=]  a stitched cross-site timeline;
//	                  trace omitted or 0 picks the chain's
//	                  widest-spanning flow
func registerFleet(mux *http.ServeMux, fleet *telemetry.Aggregator) {
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		data, err := json.MarshalIndent(fleet.Model(time.Now()), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, data)
	})
	mux.HandleFunc("/fleet/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = fleet.WritePrometheus(w)
	})
	mux.HandleFunc("/fleet/site", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id", http.StatusBadRequest)
			return
		}
		d, ok := fleet.Site(id, time.Now())
		if !ok {
			http.Error(w, "unknown site", http.StatusNotFound)
			return
		}
		data, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, data)
	})
	mux.HandleFunc("/fleet/trace", func(w http.ResponseWriter, r *http.Request) {
		chain := r.URL.Query().Get("chain")
		if chain == "" {
			http.Error(w, "missing chain", http.StatusBadRequest)
			return
		}
		var trace uint64
		if q := r.URL.Query().Get("trace"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			trace = n
		}
		tl, ok := fleet.Timeline(chain, trace)
		if !ok {
			http.Error(w, "no stitched timeline", http.StatusNotFound)
			return
		}
		data, err := json.MarshalIndent(tl, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, data)
	})
}
