package flowtable

import (
	"testing"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

// LookupBatch must be observationally identical to N sequential Lookups:
// same records, same direction bits, same hit/miss pattern — including
// reverse-direction keys and keys that hash to the same shard.
func TestLookupBatchMatchesSequentialLookup(t *testing.T) {
	tbl := New(4) // few shards so many entries collide per shard
	otherStack := labels.Stack{Chain: 9, Egress: 1}
	for i := 0; i < 50; i++ {
		tbl.Insert(testStack, flowN(i), Record{VNF: Hop(i + 1), Next: Hop(100 + i), Prev: Hop(200 + i)})
	}

	const n = 120
	sts := make([]labels.Stack, n)
	flows := make([]packet.FlowKey, n)
	for i := 0; i < n; i++ {
		sts[i] = testStack
		switch {
		case i%5 == 3:
			flows[i] = flowN(i % 50).Reverse() // reverse-direction hit
		case i%7 == 6:
			flows[i] = flowN(1000 + i) // miss
		case i%11 == 10:
			sts[i] = otherStack // same flow, wrong stack: miss
			flows[i] = flowN(i % 50)
		default:
			flows[i] = flowN(i % 50)
		}
	}

	recs := make([]Record, n)
	fwds := make([]bool, n)
	oks := make([]bool, n)
	tbl.LookupBatch(sts, flows, recs, fwds, oks)

	for i := 0; i < n; i++ {
		rec, fwd, ok := tbl.Lookup(sts[i], flows[i])
		if oks[i] != ok || fwds[i] != fwd || recs[i] != rec {
			t.Errorf("entry %d: batch (%+v fwd=%v ok=%v) != sequential (%+v fwd=%v ok=%v)",
				i, recs[i], fwds[i], oks[i], rec, fwd, ok)
		}
	}
}

// A batch larger than the stack scratch (64) must take the heap path and
// still produce correct results.
func TestLookupBatchLargeBurst(t *testing.T) {
	tbl := New(8)
	const n = 200
	for i := 0; i < n; i++ {
		tbl.Insert(testStack, flowN(i), Record{Next: Hop(i + 1)})
	}
	sts := make([]labels.Stack, n)
	flows := make([]packet.FlowKey, n)
	for i := 0; i < n; i++ {
		sts[i] = testStack
		flows[i] = flowN(i)
	}
	recs := make([]Record, n)
	fwds := make([]bool, n)
	oks := make([]bool, n)
	tbl.LookupBatch(sts, flows, recs, fwds, oks)
	for i := 0; i < n; i++ {
		if !oks[i] || recs[i].Next != Hop(i+1) {
			t.Fatalf("entry %d: ok=%v rec=%+v, want hit with Next=%d", i, oks[i], recs[i], i+1)
		}
	}
}

// LookupBatch refreshes the idle epoch like Lookup does, so batched
// traffic keeps its flows alive across Advance-based eviction.
func TestLookupBatchRefreshesEpoch(t *testing.T) {
	tbl := New(2)
	tbl.Insert(testStack, flowN(0), Record{Next: 1})
	tbl.Insert(testStack, flowN(1), Record{Next: 2})

	sts := []labels.Stack{testStack}
	flows := []packet.FlowKey{flowN(0)}
	recs := make([]Record, 1)
	fwds := make([]bool, 1)
	oks := make([]bool, 1)

	// Touch flow 0 via the batch path each epoch; flow 1 goes idle.
	for e := 0; e < 3; e++ {
		tbl.LookupBatch(sts, flows, recs, fwds, oks)
		if !oks[0] {
			t.Fatalf("epoch %d: batched lookup lost the refreshed flow", e)
		}
		tbl.Advance(1)
	}
	if _, _, ok := tbl.Lookup(testStack, flowN(0)); !ok {
		t.Error("refreshed flow was evicted despite batched lookups")
	}
	if _, _, ok := tbl.Lookup(testStack, flowN(1)); ok {
		t.Error("idle flow survived eviction")
	}
}
