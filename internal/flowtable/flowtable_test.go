package flowtable

import (
	"sync"
	"testing"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

var testStack = labels.Stack{Chain: 42, Egress: 3}

func flowN(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: 0x0A000000 | uint32(i), DstIP: 0xC0A80101,
		SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: 6,
	}
}

func TestInsertLookupBothDirections(t *testing.T) {
	tb := New(4)
	flow := flowN(1)
	rec := Record{VNF: 5, Next: 7, Prev: 9}
	tb.Insert(testStack, flow, rec)
	got, fwd, ok := tb.Lookup(testStack, flow)
	if !ok || !fwd || got != rec {
		t.Errorf("forward lookup = %+v fwd=%v ok=%v", got, fwd, ok)
	}
	got, fwd, ok = tb.Lookup(testStack, flow.Reverse())
	if !ok || fwd || got != rec {
		t.Errorf("reverse lookup = %+v fwd=%v ok=%v, want same record, fwd=false", got, fwd, ok)
	}
}

func TestDirectionIndependentOfKeyOrientation(t *testing.T) {
	tb := New(4)
	// A flow whose forward key is NOT canonical (src > dst).
	flow := packet.FlowKey{SrcIP: 0xC0A80101, DstIP: 0x0A000001, SrcPort: 80, DstPort: 9999, Proto: 6}
	if _, canonical := flow.Canonical(); canonical {
		t.Skip("test flow unexpectedly canonical")
	}
	rec := Record{VNF: 1, Next: 2, Prev: 3}
	tb.Insert(testStack, flow, rec)
	if _, fwd, ok := tb.Lookup(testStack, flow); !ok || !fwd {
		t.Error("forward lookup of non-canonical flow failed")
	}
	if _, fwd, ok := tb.Lookup(testStack, flow.Reverse()); !ok || fwd {
		t.Error("reverse lookup of non-canonical flow misreported direction")
	}
}

func TestLookupMiss(t *testing.T) {
	tb := New(4)
	if _, _, ok := tb.Lookup(testStack, flowN(1)); ok {
		t.Error("lookup on empty table hit")
	}
	tb.Insert(testStack, flowN(1), Record{VNF: 1})
	other := labels.Stack{Chain: 43, Egress: 3}
	if _, _, ok := tb.Lookup(other, flowN(1)); ok {
		t.Error("lookup hit across different chain labels")
	}
}

func TestRemove(t *testing.T) {
	tb := New(4)
	tb.Insert(testStack, flowN(1), Record{VNF: 1})
	tb.Remove(testStack, flowN(1).Reverse()) // removing via either direction works
	if _, _, ok := tb.Lookup(testStack, flowN(1)); ok {
		t.Error("entry survived Remove")
	}
	if tb.Len() != 0 {
		t.Errorf("Len() = %d, want 0", tb.Len())
	}
}

func TestLenCountsConnections(t *testing.T) {
	tb := New(4)
	for i := 0; i < 100; i++ {
		tb.Insert(testStack, flowN(i), Record{VNF: Hop(i)})
	}
	if got := tb.Len(); got != 100 {
		t.Errorf("Len() = %d, want 100", got)
	}
}

func TestInsertOverwrites(t *testing.T) {
	tb := New(4)
	tb.Insert(testStack, flowN(1), Record{VNF: 1})
	tb.Insert(testStack, flowN(1), Record{VNF: 2})
	rec, _, ok := tb.Lookup(testStack, flowN(1))
	if !ok || rec.VNF != 2 {
		t.Errorf("lookup after overwrite = %+v", rec)
	}
	if tb.Len() != 1 {
		t.Errorf("Len() = %d, want 1", tb.Len())
	}
}

func TestAdvanceEvictsIdleEntries(t *testing.T) {
	tb := New(4)
	tb.Insert(testStack, flowN(1), Record{VNF: 1})
	tb.Insert(testStack, flowN(2), Record{VNF: 2})
	// Keep flow 1 alive across epochs; flow 2 goes idle.
	for e := 0; e < 3; e++ {
		tb.Advance(1)
		tb.Lookup(testStack, flowN(1))
	}
	if _, _, ok := tb.Lookup(testStack, flowN(1)); !ok {
		t.Error("active flow evicted")
	}
	if _, _, ok := tb.Lookup(testStack, flowN(2)); ok {
		t.Error("idle flow not evicted")
	}
	// An active flow that then goes idle is evicted too.
	tb.Advance(1)
	tb.Advance(1)
	if _, _, ok := tb.Lookup(testStack, flowN(1)); ok {
		t.Error("flow 1 not evicted after going idle")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				flow := flowN(w*1000 + i)
				tb.Insert(testStack, flow, Record{VNF: Hop(i + 1)})
				if rec, _, ok := tb.Lookup(testStack, flow); !ok || rec.VNF != Hop(i+1) {
					t.Errorf("concurrent lookup mismatch: %+v %v", rec, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tb.Len(); got != 8000 {
		t.Errorf("Len() = %d, want 8000", got)
	}
}

func TestNewRoundsUpShards(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		tb := New(tc.in)
		if len(tb.shards) != tc.want {
			t.Errorf("New(%d) has %d shards, want %d", tc.in, len(tb.shards), tc.want)
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tb := New(16)
	const flows = 100000
	for i := 0; i < flows; i++ {
		tb.Insert(testStack, flowN(i), Record{VNF: Hop(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(testStack, flowN(i%flows))
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(testStack, flowN(i), Record{VNF: Hop(i)})
	}
}
