package flowtable

import (
	"testing"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

func pflow(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: 0x0A000000 + uint32(i), DstIP: 0xC0A80001, SrcPort: 10000, DstPort: 80, Proto: 6}
}

func TestPartitionedRoundTripBothDirections(t *testing.T) {
	p := NewPartitioned(4, 2)
	st := labels.Stack{Chain: 1, Egress: 2}
	rec := Record{VNF: 7, Next: 8, Prev: 9}
	for i := 0; i < 64; i++ {
		p.Insert(st, pflow(i), rec)
	}
	if p.Len() != 64 {
		t.Fatalf("Len = %d, want 64", p.Len())
	}
	for i := 0; i < 64; i++ {
		got, fwd, ok := p.Lookup(st, pflow(i))
		if !ok || !fwd || got != rec {
			t.Fatalf("forward lookup %d: rec=%+v fwd=%v ok=%v", i, got, fwd, ok)
		}
		got, fwd, ok = p.Lookup(st, pflow(i).Reverse())
		if !ok || fwd || got != rec {
			t.Fatalf("reverse lookup %d: rec=%+v fwd=%v ok=%v", i, got, fwd, ok)
		}
	}
}

// TestPartitionedSteeringExclusive pins the partition-selection rule:
// a flow lives in partition SteerHash % parts and nowhere else, in both
// directions — the invariant that lets a runner core own its partition.
func TestPartitionedSteeringExclusive(t *testing.T) {
	const parts = 4
	p := NewPartitioned(parts, 2)
	st := labels.Stack{Chain: 1, Egress: 2}
	for i := 0; i < 128; i++ {
		k := pflow(i)
		p.Insert(st, k, Record{Next: 1})
		want := int(k.SteerHash() % parts)
		if int(k.Reverse().SteerHash()%parts) != want {
			t.Fatalf("flow %d: directions steer to different partitions", i)
		}
		for pi := 0; pi < parts; pi++ {
			_, _, ok := p.Part(pi).Lookup(st, k)
			if ok != (pi == want) {
				t.Fatalf("flow %d found in partition %d, want only %d", i, pi, want)
			}
		}
		p.Remove(st, k)
	}
}

func TestPartitionedOccupancySumsToLen(t *testing.T) {
	p := NewPartitioned(4, 2)
	st := labels.Stack{Chain: 1, Egress: 2}
	for i := 0; i < 200; i++ {
		p.Insert(st, pflow(i), Record{Next: 1})
	}
	occ := p.Occupancy()
	if len(occ) != 4 {
		t.Fatalf("Occupancy has %d parts, want 4", len(occ))
	}
	sum, nonEmpty := 0, 0
	for _, n := range occ {
		sum += n
		if n > 0 {
			nonEmpty++
		}
	}
	if sum != p.Len() {
		t.Fatalf("occupancy sum %d != Len %d", sum, p.Len())
	}
	if nonEmpty < 2 {
		t.Errorf("steering skew: only %d of 4 partitions used for 200 flows", nonEmpty)
	}
}

func TestPartitionedLookupBatchMixedAndUniform(t *testing.T) {
	p := NewPartitioned(4, 2)
	st := labels.Stack{Chain: 1, Egress: 2}
	// Mixed burst: flows across all partitions.
	const n = 64
	sts := make([]labels.Stack, n)
	flows := make([]packet.FlowKey, n)
	for i := 0; i < n; i++ {
		sts[i] = st
		flows[i] = pflow(i)
		if i%2 == 0 {
			p.Insert(st, flows[i], Record{Next: Hop(i + 1)})
		}
	}
	recs := make([]Record, n)
	fwds := make([]bool, n)
	oks := make([]bool, n)
	p.LookupBatch(sts, flows, recs, fwds, oks)
	for i := 0; i < n; i++ {
		if oks[i] != (i%2 == 0) {
			t.Fatalf("entry %d: ok=%v", i, oks[i])
		}
		if oks[i] && recs[i].Next != Hop(i+1) {
			t.Fatalf("entry %d: rec=%+v", i, recs[i])
		}
	}
	// Uniform burst: every entry from one partition (a steered core's
	// view) takes the shard-grouped fast path.
	target := int(pflow(0).SteerHash() % 4)
	uni := make([]packet.FlowKey, 0, 8)
	for i := 0; len(uni) < 8; i++ {
		if int(pflow(i).SteerHash()%4) == target {
			uni = append(uni, pflow(i))
		}
	}
	for _, k := range uni {
		p.Insert(st, k, Record{Next: 42})
	}
	m := len(uni)
	p.LookupBatch(sts[:m], uni, recs[:m], fwds[:m], oks[:m])
	for i := 0; i < m; i++ {
		if !oks[i] || recs[i].Next != 42 {
			t.Fatalf("uniform entry %d: rec=%+v ok=%v", i, recs[i], oks[i])
		}
	}
}

func TestPartitionedAdvanceEvicts(t *testing.T) {
	p := NewPartitioned(2, 2)
	st := labels.Stack{Chain: 1, Egress: 2}
	for i := 0; i < 32; i++ {
		p.Insert(st, pflow(i), Record{Next: 1})
	}
	if ev := p.Advance(1); ev != 0 {
		t.Fatalf("first advance evicted %d", ev)
	}
	// Keep half the flows warm.
	for i := 0; i < 16; i++ {
		p.Lookup(st, pflow(i))
	}
	if ev := p.Advance(1); ev != 16 {
		t.Fatalf("evicted %d, want 16", ev)
	}
	if p.Len() != 16 {
		t.Fatalf("Len = %d, want 16", p.Len())
	}
}

func TestTableOccupancyPerShard(t *testing.T) {
	tb := New(4)
	st := labels.Stack{Chain: 1, Egress: 2}
	for i := 0; i < 100; i++ {
		tb.Insert(st, pflow(i), Record{Next: 1})
	}
	occ := tb.Occupancy()
	if len(occ) != 4 {
		t.Fatalf("Occupancy has %d shards, want 4", len(occ))
	}
	sum := 0
	for _, n := range occ {
		sum += n
	}
	if sum != tb.Len() {
		t.Fatalf("occupancy sum %d != Len %d", sum, tb.Len())
	}
}
