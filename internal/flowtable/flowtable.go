// Package flowtable implements the forwarder's connection table
// (Section 3, Figure 6). For each connection the paper's forwarder keeps
// two entries: one mapping the forward 5-tuple to the adjacent VNF
// instance and next-hop forwarder chosen by load balancing on the first
// packet, and one mapping the reversed 5-tuple to the previous hop, so
// reverse packets retrace the same instances (flow affinity and symmetric
// return). This implementation stores the equivalent information as a
// single record under the direction-independent canonical key; a lookup
// reports whether the querying packet travels in the connection's forward
// or reverse direction.
//
// The table is sharded by flow-key hash so multiple forwarder cores can
// share one table with little contention.
package flowtable

import (
	"sync"
	"sync/atomic"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

// Hop identifies a load-balancing target: a VNF instance, a peer
// forwarder, or an edge instance. Hop values are assigned by the
// forwarder's rule table; None means "not set".
type Hop uint32

// None is the zero Hop.
const None Hop = 0

// Record is the per-connection state (the paper's two flow-table entries
// combined): the adjacent VNF instance serving the connection at this
// forwarder, the next hop toward the egress, and the previous hop toward
// the ingress.
type Record struct {
	VNF  Hop // local VNF instance (None at transit-only forwarders)
	Next Hop // next hop after local processing, toward egress
	Prev Hop // previous hop, toward ingress (for symmetric return)
	// Ann is the flow's steering annotation (labels.AnnMigrated after a
	// live handoff); forwarders stamp it onto every packet of the flow.
	Ann uint8
}

// Key is the flow-table key: the label stack plus the canonical 5-tuple.
type Key struct {
	Chain  uint32
	Egress uint32
	Flow   packet.FlowKey
}

type entry struct {
	rec Record
	// fwdCanonical records whether the connection's forward direction
	// has the canonical key orientation.
	fwdCanonical bool
	epoch        uint32
}

type shard struct {
	mu sync.Mutex
	m  map[Key]entry
}

// Table is a sharded flow table.
type Table struct {
	shards []shard
	mask   uint64
	epoch  atomic.Uint32 // advanced by Advance; used for idle eviction
}

// New returns a table with the given number of shards, rounded up to a
// power of two (minimum 1).
func New(shards int) *Table {
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Table{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[Key]entry)
	}
	return t
}

func (t *Table) shardFor(k Key) *shard {
	return &t.shards[k.Flow.Hash()&t.mask]
}

func canonicalKey(st labels.Stack, flow packet.FlowKey) (Key, bool) {
	cf, same := flow.Canonical()
	return Key{Chain: st.Chain, Egress: st.Egress, Flow: cf}, same
}

// Insert records the decisions made for a new connection whose forward
// direction is `flow`.
func (t *Table) Insert(st labels.Stack, flow packet.FlowKey, rec Record) {
	k, fwdCanonical := canonicalKey(st, flow)
	e := entry{rec: rec, fwdCanonical: fwdCanonical, epoch: t.epoch.Load()}
	s := t.shardFor(k)
	s.mu.Lock()
	s.m[k] = e
	s.mu.Unlock()
}

// Lookup returns the connection record for a packet with the given
// labels and 5-tuple, and whether that packet travels in the connection's
// forward direction.
func (t *Table) Lookup(st labels.Stack, flow packet.FlowKey) (rec Record, forward, ok bool) {
	k, sameAsCanonical := canonicalKey(st, flow)
	epoch := t.epoch.Load()
	s := t.shardFor(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok && e.epoch != epoch {
		e.epoch = epoch
		s.m[k] = e
	}
	s.mu.Unlock()
	if !ok {
		return Record{}, false, false
	}
	return e.rec, sameAsCanonical == e.fwdCanonical, true
}

// LookupBatch performs Lookup for n parallel entries (sts[i], flows[i]),
// writing results into recs/forwards/oks. Entries are grouped by shard so
// each shard lock is acquired at most once per batch, instead of once per
// packet — the batched data path's answer to flow-table lock pressure.
// All five slices must have equal length.
func (t *Table) LookupBatch(sts []labels.Stack, flows []packet.FlowKey, recs []Record, forwards, oks []bool) {
	n := len(sts)
	if n == 0 {
		return
	}
	// Scratch: canonical keys, orientation bits, and shard indices. Small
	// batches stay on the stack.
	var (
		kbuf [64]Key
		cbuf [64]bool
		sbuf [64]uint64
	)
	keys, canon, shardIdx := kbuf[:], cbuf[:], sbuf[:]
	if n > len(kbuf) {
		keys = make([]Key, n)
		canon = make([]bool, n)
		shardIdx = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		keys[i], canon[i] = canonicalKey(sts[i], flows[i])
		shardIdx[i] = keys[i].Flow.Hash() & t.mask
	}
	epoch := t.epoch.Load()
	const visited = ^uint64(0) // shard indices are small, so this is free
	for i := 0; i < n; i++ {
		si := shardIdx[i]
		if si == visited {
			continue
		}
		s := &t.shards[si]
		s.mu.Lock()
		for j := i; j < n; j++ {
			if shardIdx[j] != si {
				continue
			}
			shardIdx[j] = visited
			e, ok := s.m[keys[j]]
			oks[j] = ok
			if !ok {
				recs[j] = Record{}
				forwards[j] = false
				continue
			}
			if e.epoch != epoch {
				e.epoch = epoch
				s.m[keys[j]] = e
			}
			recs[j] = e.rec
			forwards[j] = canon[j] == e.fwdCanonical
		}
		s.mu.Unlock()
	}
}

// Remove deletes a connection.
func (t *Table) Remove(st labels.Stack, flow packet.FlowKey) {
	k, _ := canonicalKey(st, flow)
	s := t.shardFor(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of tracked connections.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Occupancy returns the number of tracked connections per shard, in
// shard order — the steering-skew view the forwarder's flowpart gauges
// publish. The counts are read shard by shard, so the result is a
// consistent per-shard set, not an atomic whole-table snapshot.
func (t *Table) Occupancy() []int {
	out := make([]int, len(t.shards))
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out[i] = len(s.m)
		s.mu.Unlock()
	}
	return out
}

// Advance bumps the idle-tracking epoch and evicts connections not
// looked up within `keep` epochs. The owner calls this periodically (e.g.
// once per idle-timeout interval) instead of stamping wall-clock time on
// the fast path.
func (t *Table) Advance(keep uint32) (evicted int) {
	cur := t.epoch.Add(1)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.m {
			if cur-e.epoch > keep {
				delete(s.m, k)
				evicted++
			}
		}
		s.mu.Unlock()
	}
	return evicted
}
