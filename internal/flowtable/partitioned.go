package flowtable

import (
	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

// Partitioned is a flow table split into independent per-core
// partitions, selected by the direction-independent steering hash of
// the flow key — the same hash a forwarder.RunnerPool steers bursts
// with. With Parts equal to the pool's core count every core only ever
// touches its own partition, so the partitions' shard locks are
// uncontended: the multi-core data plane's flow-table path serializes
// nothing across cores. Both directions of a connection hash to the
// same partition, preserving flow affinity and symmetric return.
//
// Partitioned implements the forwarder's FlowStore and BatchFlowStore
// contracts, so it drops into NewWithStore.
type Partitioned struct {
	parts []*Table
}

// NewPartitioned returns a table with `parts` partitions (minimum 1) of
// `shards` shards each (see New for shard rounding).
func NewPartitioned(parts, shards int) *Partitioned {
	if parts < 1 {
		parts = 1
	}
	p := &Partitioned{parts: make([]*Table, parts)}
	for i := range p.parts {
		p.parts[i] = New(shards)
	}
	return p
}

// Parts returns the number of partitions.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Part returns partition i — switchbench's isolated per-core
// measurements drive each partition's owning core directly.
func (p *Partitioned) Part(i int) *Table { return p.parts[i] }

func (p *Partitioned) partFor(flow packet.FlowKey) *Table {
	return p.parts[flow.SteerHash()%uint64(len(p.parts))]
}

// Insert records a new connection in its steering partition.
func (p *Partitioned) Insert(st labels.Stack, flow packet.FlowKey, rec Record) {
	p.partFor(flow).Insert(st, flow, rec)
}

// Lookup resolves a connection in its steering partition.
func (p *Partitioned) Lookup(st labels.Stack, flow packet.FlowKey) (rec Record, forward, ok bool) {
	return p.partFor(flow).Lookup(st, flow)
}

// LookupBatch resolves a burst of lookups. A burst steered by a
// RunnerPool with Cores == Parts lands entirely in one partition, so
// the common case delegates the whole batch to that partition's
// shard-grouped path; mixed bursts (direct callers, parts ≠ cores)
// fall back to per-entry lookups.
func (p *Partitioned) LookupBatch(sts []labels.Stack, flows []packet.FlowKey, recs []Record, forwards, oks []bool) {
	n := len(sts)
	if n == 0 {
		return
	}
	first := p.partFor(flows[0])
	uniform := true
	for i := 1; i < n; i++ {
		if p.partFor(flows[i]) != first {
			uniform = false
			break
		}
	}
	if uniform {
		first.LookupBatch(sts, flows, recs, forwards, oks)
		return
	}
	for i := 0; i < n; i++ {
		recs[i], forwards[i], oks[i] = p.partFor(flows[i]).Lookup(sts[i], flows[i])
	}
}

// Remove deletes a connection from its steering partition.
func (p *Partitioned) Remove(st labels.Stack, flow packet.FlowKey) {
	p.partFor(flow).Remove(st, flow)
}

// Len returns the number of tracked connections across all partitions.
func (p *Partitioned) Len() int {
	n := 0
	for _, t := range p.parts {
		n += t.Len()
	}
	return n
}

// Occupancy returns the number of tracked connections per partition, in
// partition order — one element per core when Parts == Cores.
func (p *Partitioned) Occupancy() []int {
	out := make([]int, len(p.parts))
	for i, t := range p.parts {
		out[i] = t.Len()
	}
	return out
}

// Advance ages every partition; see Table.Advance.
func (p *Partitioned) Advance(keep uint32) (evicted int) {
	for _, t := range p.parts {
		evicted += t.Advance(keep)
	}
	return evicted
}
