package flowtable

import "switchboard/internal/labels"

// Migration support: live flow handoff repins a set of connections from
// one VNF instance hop to another and stamps the records with a flow
// annotation so packets of moved flows are marked on the wire.

// FlowsPinnedTo returns the canonical keys of every connection of stack
// st whose record pins the given hop as its local VNF instance. The
// migration coordinator uses it to choose which flows to hand off.
func (t *Table) FlowsPinnedTo(st labels.Stack, hop Hop) []Key {
	var out []Key
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.m {
			if k.Chain == st.Chain && k.Egress == st.Egress && e.rec.VNF == hop {
				out = append(out, k)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// RepinFlows rewrites the given connections' records from one VNF
// instance hop to another, stamping ann into each record. Only records
// still pinned to `from` are touched (a record concurrently removed or
// already moved is skipped), so the call is idempotent. Returns the
// number of records moved.
func (t *Table) RepinFlows(st labels.Stack, flows []Key, from, to Hop, ann uint8) (moved int) {
	for _, k := range flows {
		if k.Chain != st.Chain || k.Egress != st.Egress {
			continue
		}
		s := t.shardFor(k)
		s.mu.Lock()
		if e, ok := s.m[k]; ok && e.rec.VNF == from {
			e.rec.VNF = to
			e.rec.Ann = ann
			s.m[k] = e
			moved++
		}
		s.mu.Unlock()
	}
	return moved
}
