package flowtable

import (
	"testing"

	"switchboard/internal/labels"
	"switchboard/internal/packet"
)

func migFlow(n uint16) packet.FlowKey {
	return packet.FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 1000 + n, DstPort: 80, Proto: 6}
}

func TestFlowsPinnedToAndRepin(t *testing.T) {
	tb := New(4)
	st := labels.Stack{Chain: 5, Egress: 9}
	other := labels.Stack{Chain: 6, Egress: 9}
	oldHop, newHop, nextHop := Hop(11), Hop(22), Hop(33)

	for i := uint16(0); i < 8; i++ {
		tb.Insert(st, migFlow(i), Record{VNF: oldHop, Next: nextHop})
	}
	// Flows of another chain and another hop must not be enumerated.
	tb.Insert(other, migFlow(0), Record{VNF: oldHop})
	tb.Insert(st, migFlow(100), Record{VNF: Hop(99)})

	pinned := tb.FlowsPinnedTo(st, oldHop)
	if len(pinned) != 8 {
		t.Fatalf("FlowsPinnedTo = %d flows, want 8", len(pinned))
	}
	for _, k := range pinned {
		if k.Chain != st.Chain || k.Egress != st.Egress {
			t.Fatalf("enumerated foreign flow %+v", k)
		}
	}

	moved := tb.RepinFlows(st, pinned, oldHop, newHop, labels.AnnMigrated)
	if moved != 8 {
		t.Fatalf("RepinFlows moved %d, want 8", moved)
	}
	for i := uint16(0); i < 8; i++ {
		rec, _, ok := tb.Lookup(st, migFlow(i))
		if !ok {
			t.Fatalf("flow %d vanished", i)
		}
		if rec.VNF != newHop || rec.Ann != labels.AnnMigrated {
			t.Fatalf("flow %d not repinned: %+v", i, rec)
		}
		if rec.Next != nextHop {
			t.Fatalf("flow %d lost its Next hop: %+v", i, rec)
		}
	}
	// Untouched records keep their pins.
	if rec, _, _ := tb.Lookup(other, migFlow(0)); rec.VNF != oldHop {
		t.Fatalf("foreign chain repinned: %+v", rec)
	}
	if rec, _, _ := tb.Lookup(st, migFlow(100)); rec.VNF != Hop(99) {
		t.Fatalf("foreign hop repinned: %+v", rec)
	}
	// Repin is idempotent: nothing is pinned to oldHop anymore.
	if again := tb.RepinFlows(st, pinned, oldHop, newHop, labels.AnnMigrated); again != 0 {
		t.Fatalf("second RepinFlows moved %d, want 0", again)
	}
}
