package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/simnet"
	"switchboard/internal/slo"
)

// Agent defaults. Every bound exists to cap report size and agent
// memory: the telemetry plane must stay cheap enough to run everywhere,
// always.
const (
	// DefaultInterval paces report capture.
	DefaultInterval = time.Second
	// DefaultMaxSpans / DefaultMaxEvents cap control-plane records per
	// report (newest win).
	DefaultMaxSpans  = 128
	DefaultMaxEvents = 256
	// DefaultMaxAlerts caps SLO alerts per report.
	DefaultMaxAlerts = 64
	// DefaultMaxHops caps packet-trace hop records per report.
	DefaultMaxHops = 512
	// DefaultMaxReportBytes caps the marshalled report; oversized
	// reports are trimmed (spans, events, hops halved) until they fit.
	DefaultMaxReportBytes = 256 << 10
	// DefaultPublishQueue bounds reports waiting on the publisher
	// goroutine; beyond it the agent sheds.
	DefaultPublishQueue = 4
)

// AgentConfig wires a site telemetry agent. Site, Registry, Bus and
// Topic are required; everything else is optional or defaulted.
type AgentConfig struct {
	// Site is the reporting site's identifier.
	Site simnet.SiteID
	// Registry is the local metrics registry the agent folds.
	Registry *metrics.Registry
	// Filter, when non-nil, keeps only metric names it returns true
	// for — how a shared-process simulation carves per-site views. Nil
	// ships everything.
	Filter func(name string) bool
	// Recorder, when non-nil, contributes spans and events new since
	// the previous report.
	Recorder *obs.Recorder
	// SLO, when non-nil, contributes alerts that fired or resolved
	// since the previous report (AlertsSince — the ?since= increment).
	SLO *slo.Evaluator
	// Healthy, when non-nil, is the site's /healthz-equivalent probe;
	// nil reports healthy.
	Healthy func(now time.Time) bool
	// Traces, when non-nil, is drained for packet-trace hop records.
	Traces *TraceBuffer
	// Bus carries reports; Topic is the fleet feed (Topic(gsbSite)).
	Bus   bus.PubSub
	Topic bus.Topic
	// Interval paces capture (≤ 0 → DefaultInterval).
	Interval time.Duration
	// MaxSpans, MaxEvents, MaxAlerts, MaxHops, MaxReportBytes and
	// Queue bound the report and the agent (≤ 0 → the defaults above).
	MaxSpans, MaxEvents, MaxAlerts, MaxHops int
	MaxReportBytes                          int
	// SummarySamples bounds each histogram summary's sketch
	// (≤ 0 → metrics.DefaultSummarySamples).
	SummarySamples int
	Queue          int
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = DefaultMaxSpans
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = DefaultMaxAlerts
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.MaxReportBytes <= 0 {
		c.MaxReportBytes = DefaultMaxReportBytes
	}
	if c.SummarySamples <= 0 {
		c.SummarySamples = metrics.DefaultSummarySamples
	}
	if c.Queue <= 0 {
		c.Queue = DefaultPublishQueue
	}
	return c
}

// Agent is a site's telemetry reporter: on every interval it captures
// one Report (delta counters, gauge values, bounded histogram
// summaries, new spans/events/alerts, staged trace hops) and hands it
// to a publisher goroutine through a bounded queue. A full queue — the
// bus or the network being slow — sheds the report and counts
// telemetry.sheds; capture never blocks on publishing. All methods are
// safe for concurrent use.
type Agent struct {
	cfg AgentConfig

	reportsSent *metrics.Counter
	sheds       *metrics.Counter
	reportBytes *metrics.Histogram

	queue chan *Report

	mu            sync.Mutex
	epoch         int64 // boot epoch (first capture instant, Unix ns)
	seq           uint64
	prevCounters  map[string]uint64
	lastSpanID    uint64
	lastEventNs   int64
	lastAlertPoll time.Time

	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

// NewAgent returns an agent for cfg (defaults applied). Call Start to
// begin reporting; RegisterMetrics to publish the agent's own counters.
func NewAgent(cfg AgentConfig) *Agent {
	cfg = cfg.withDefaults()
	return &Agent{
		cfg:          cfg,
		reportsSent:  &metrics.Counter{},
		sheds:        &metrics.Counter{},
		reportBytes:  metrics.NewHistogram(),
		queue:        make(chan *Report, cfg.Queue),
		prevCounters: make(map[string]uint64),
		stop:         make(chan struct{}),
	}
}

// RegisterMetrics publishes the agent's own instruments into reg:
//
//	telemetry.reports_sent  reports handed to the bus
//	telemetry.sheds         reports dropped because the plane was slow
//	                        (shared create-or-get counter: the
//	                        aggregator's subscriber-side sheds fold
//	                        into the same name in one process)
//	telemetry.report_bytes  marshalled report size (bytes, as ns units
//	                        in the histogram convention)
func (a *Agent) RegisterMetrics(reg *metrics.Registry) {
	shared := reg.Counter("telemetry.sheds")
	a.mu.Lock()
	shared.Add(a.sheds.Load())
	a.sheds = shared
	a.mu.Unlock()
	reg.CounterFunc("telemetry.reports_sent", a.reportsSent.Load)
	reg.RegisterHistogram("telemetry.report_bytes", a.reportBytes)
}

// shed counts one shed report. The counter pointer is read under the
// lock because RegisterMetrics swaps it for the registry-shared one.
func (a *Agent) shed() {
	a.mu.Lock()
	s := a.sheds
	a.mu.Unlock()
	s.Inc()
}

// Sheds returns reports shed so far (queue full at capture time).
func (a *Agent) Sheds() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sheds.Load()
}

// ReportsSent returns reports handed to the bus so far.
func (a *Agent) ReportsSent() uint64 { return a.reportsSent.Load() }

// Start launches the capture ticker and the publisher goroutine,
// returning a stop function. Start is idempotent.
func (a *Agent) Start() func() {
	a.startOnce.Do(func() {
		a.done.Add(2)
		go func() {
			defer a.done.Done()
			t := time.NewTicker(a.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-a.stop:
					return
				case now := <-t.C:
					a.Flush(now)
				}
			}
		}()
		go func() {
			defer a.done.Done()
			for {
				select {
				case <-a.stop:
					return
				case r := <-a.queue:
					a.publish(r)
				}
			}
		}()
	})
	var once sync.Once
	return func() {
		once.Do(func() {
			close(a.stop)
			a.done.Wait()
		})
	}
}

// Flush captures one report now and enqueues it for publishing,
// shedding (and counting) if the publish queue is full. It is the
// ticker body, exported so tests and harnesses can pace the agent
// deterministically. Returns the captured report (even when shed).
func (a *Agent) Flush(now time.Time) *Report {
	r := a.collect(now)
	select {
	case a.queue <- r:
	default:
		a.shed()
	}
	return r
}

// publish marshals (for sizing and the bytes histogram), trims an
// oversized report, and hands it to the bus. Runs on the publisher
// goroutine only.
func (a *Agent) publish(r *Report) {
	size := a.sizeAndTrim(r)
	a.reportBytes.Observe(time.Duration(size))
	if err := a.cfg.Bus.Publish(a.cfg.Site, a.cfg.Topic, r, size); err != nil {
		a.shed()
		return
	}
	a.reportsSent.Inc()
}

// sizeAndTrim returns the marshalled size of r, halving its variable-
// length sections (spans, events, hops, then alerts) while the report
// exceeds MaxReportBytes. Trimming keeps the newest records — the ones
// the fleet view is behind on. Every trim uses ceil-halving so a
// length-1 section reaches empty: even when the untrimmable base
// sections (counters, gauges, summaries) alone exceed the cap, the
// loop terminates instead of spinning on a report it cannot shrink.
func (a *Agent) sizeAndTrim(r *Report) int {
	for {
		data, err := json.Marshal(r)
		if err != nil {
			return 0
		}
		if len(data) <= a.cfg.MaxReportBytes {
			return len(data)
		}
		if len(r.Spans) == 0 && len(r.Events) == 0 && len(r.Hops) == 0 && len(r.Alerts) == 0 {
			return len(data)
		}
		r.Spans = keepNewestSpans(r.Spans, len(r.Spans)/2)
		r.Events = keepNewestEvents(r.Events, len(r.Events)/2)
		r.Hops = r.Hops[(len(r.Hops)+1)/2:]
		if len(r.Spans) == 0 && len(r.Events) == 0 && len(r.Hops) == 0 {
			r.Alerts = r.Alerts[(len(r.Alerts)+1)/2:]
		}
	}
}

func keepNewestSpans(s []obs.Span, n int) []obs.Span {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

func keepNewestEvents(e []obs.Event, n int) []obs.Event {
	if len(e) <= n {
		return e
	}
	return e[len(e)-n:]
}

// collect captures one report: the delta-encoded registry fold plus the
// span/event/alert/hop increments since the previous capture.
func (a *Agent) collect(now time.Time) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.epoch == 0 {
		// Stamp the boot epoch on first capture: a restarted agent
		// resets Seq to 1, and the aggregator tells that apart from a
		// replayed report by the epoch changing.
		a.epoch = now.UnixNano()
	}
	a.seq++
	r := &Report{
		Site:       string(a.cfg.Site),
		Epoch:      a.epoch,
		Seq:        a.seq,
		TakenAtNs:  now.UnixNano(),
		IntervalNs: int64(a.cfg.Interval),
		Healthy:    true,
	}
	if a.cfg.Healthy != nil {
		r.Healthy = a.cfg.Healthy(now)
	}

	snap := a.cfg.Registry.Snapshot()
	keep := a.cfg.Filter
	r.Counters = make(map[string]uint64)
	for n, v := range snap.Counters {
		if keep != nil && !keep(n) {
			continue
		}
		prev := a.prevCounters[n]
		if v < prev {
			// Re-registration reset the series; restart the delta base.
			prev = 0
		}
		if d := v - prev; d > 0 {
			r.Counters[n] = d
		}
		a.prevCounters[n] = v
	}
	r.Gauges = make(map[string]float64)
	for n, v := range snap.Gauges {
		if keep != nil && !keep(n) {
			continue
		}
		r.Gauges[n] = v
	}
	r.Histograms = make(map[string]metrics.HistogramSummary)
	for n, h := range a.cfg.Registry.Histograms() {
		if keep != nil && !keep(n) {
			continue
		}
		r.Histograms[n] = h.Summarize(a.cfg.SummarySamples)
	}
	r.Keyed = make(map[string]string)
	for n, p := range snap.Keyed {
		if keep != nil && !keep(n) {
			continue
		}
		r.Keyed[n] = p
	}

	if a.cfg.Recorder != nil {
		for _, sp := range a.cfg.Recorder.Spans() {
			if sp.ID > a.lastSpanID {
				r.Spans = append(r.Spans, sp)
			}
		}
		r.Spans = keepNewestSpans(r.Spans, a.cfg.MaxSpans)
		for _, sp := range r.Spans {
			if sp.ID > a.lastSpanID {
				a.lastSpanID = sp.ID
			}
		}
		for _, ev := range a.cfg.Recorder.Events() {
			if ev.AtNs > a.lastEventNs {
				r.Events = append(r.Events, ev)
			}
		}
		r.Events = keepNewestEvents(r.Events, a.cfg.MaxEvents)
		for _, ev := range r.Events {
			if ev.AtNs > a.lastEventNs {
				a.lastEventNs = ev.AtNs
			}
		}
	}

	if a.cfg.SLO != nil {
		alerts := a.cfg.SLO.AlertsSince(a.lastAlertPoll)
		if len(alerts) > a.cfg.MaxAlerts {
			alerts = alerts[len(alerts)-a.cfg.MaxAlerts:]
		}
		r.Alerts = alerts
		a.lastAlertPoll = now
	}

	if a.cfg.Traces != nil {
		r.Hops = a.cfg.Traces.Drain(a.cfg.MaxHops)
	}
	return r
}
