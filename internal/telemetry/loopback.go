package telemetry

import (
	"errors"

	"switchboard/internal/bus"
	"switchboard/internal/simnet"
)

// Loopback is a bus.PubSub that delivers published telemetry reports
// straight into an aggregator, bypassing any fabric — the wiring a
// single-process daemon uses to serve a fleet-of-one /fleet view from
// its own agent. Non-Report payloads are dropped silently, matching the
// aggregator's own tolerance for foreign traffic on the fleet topic.
type Loopback struct {
	agg *Aggregator
}

// NewLoopback returns a loopback publisher into agg.
func NewLoopback(agg *Aggregator) *Loopback { return &Loopback{agg: agg} }

// Publish ingests telemetry reports directly; it never blocks and
// never fails, so the publishing agent never sheds.
func (l *Loopback) Publish(_ simnet.SiteID, _ bus.Topic, payload any, _ int) error {
	if r, ok := payload.(*Report); ok {
		l.agg.Ingest(r)
	}
	return nil
}

// Subscribe is unsupported: a loopback has exactly one consumer, the
// aggregator it was built around.
func (l *Loopback) Subscribe(simnet.SiteID, bus.Topic, int) (*bus.Subscription, error) {
	return nil, errors.New("telemetry: loopback bus has no subscriptions")
}

// WANMessages reports 0: loopback deliveries never cross the WAN.
func (l *Loopback) WANMessages() uint64 { return 0 }
