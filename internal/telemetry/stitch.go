package telemetry

import (
	"sort"

	"switchboard/internal/obs"
)

// Cross-site trace stitching: each site's agent ships the hop records
// its local components stamped, and the aggregator joins records that
// share a (chain, trace ID) key back into one end-to-end timeline —
// hops ordered by arrival, segmented into on-node and transit
// durations whose telescoping sum is exactly the end-to-end latency.

// DefaultMaxFlows bounds the flows a stitcher retains; beyond it the
// oldest flow is evicted.
const DefaultMaxFlows = 256

// StitchedHop is one hop in a stitched timeline, annotated with the
// site whose agent reported it.
type StitchedHop struct {
	// Site reported the hop.
	Site string `json:"site"`
	// Node names the hop ("fwd:B/fwd-fw", "vnf:fw-0", "sink:server").
	Node string `json:"node"`
	// ArriveNs and DepartNs bound the hop (Unix ns; DepartNs 0 for
	// terminal hops).
	ArriveNs int64 `json:"arrive_ns"`
	DepartNs int64 `json:"depart_ns,omitempty"`
}

// Segment is one interval of a stitched timeline: "hop" is time on a
// node (arrive→depart), "transit" is time between nodes (depart→next
// arrive). Segment durations telescope: they sum exactly to the
// timeline's E2ENs.
type Segment struct {
	Kind string `json:"kind"` // "hop" | "transit"
	// From and To name the segment's endpoints ("hop" segments have
	// From == To).
	From  string `json:"from"`
	To    string `json:"to"`
	DurNs int64  `json:"dur_ns"`
}

// Timeline is one flow's stitched cross-site view: the joined hops, the
// derived segments, the distinct sites in path order, and any
// control-plane spans from the involved sites overlapping the flow's
// window.
type Timeline struct {
	Chain   string        `json:"chain"`
	TraceID uint64        `json:"trace_id"`
	Hops    []StitchedHop `json:"hops"`
	// Segments alternate hop and transit intervals along the path.
	Segments []Segment `json:"segments,omitempty"`
	// E2ENs is last arrival minus first arrival — and, by telescoping,
	// the sum of every segment duration.
	E2ENs int64 `json:"e2e_ns"`
	// Sites lists the distinct reporting sites in path order.
	Sites []string `json:"sites"`
	// Spans carries control-plane spans stitched into the timeline's
	// window (bounded; populated by the aggregator's drill-down).
	Spans []obs.Span `json:"spans,omitempty"`
}

type flowKey struct {
	chain string
	trace uint64
}

type flowEntry struct {
	hops []StitchedHop
	// seen dedupes hop records across re-reported intervals.
	seen map[StitchedHop]bool
	// tick is the stitcher clock at last update, for eviction order.
	tick uint64
}

// stitcher joins hop records by flow. It is not self-locking: the
// aggregator serialises access under its own mutex.
type stitcher struct {
	flows map[flowKey]*flowEntry
	cap   int
	clock uint64
}

func newStitcher(cap int) *stitcher {
	if cap < 1 {
		cap = DefaultMaxFlows
	}
	return &stitcher{flows: make(map[flowKey]*flowEntry), cap: cap}
}

// add joins one site's hop records into the flow table, evicting the
// least-recently-updated flow past the cap.
func (s *stitcher) add(site string, recs []HopRecord) {
	for _, rec := range recs {
		k := flowKey{chain: rec.Chain, trace: rec.TraceID}
		e, ok := s.flows[k]
		if !ok {
			if len(s.flows) >= s.cap {
				s.evictOldest()
			}
			e = &flowEntry{seen: make(map[StitchedHop]bool)}
			s.flows[k] = e
		}
		s.clock++
		e.tick = s.clock
		h := StitchedHop{Site: site, Node: rec.Node, ArriveNs: rec.ArriveNs, DepartNs: rec.DepartNs}
		if e.seen[h] {
			continue
		}
		e.seen[h] = true
		e.hops = append(e.hops, h)
	}
}

func (s *stitcher) evictOldest() {
	var oldest flowKey
	var oldestTick uint64
	first := true
	for k, e := range s.flows {
		if first || e.tick < oldestTick {
			oldest, oldestTick, first = k, e.tick, false
		}
	}
	if !first {
		delete(s.flows, oldest)
	}
}

// timeline renders one flow's stitched view, or ok=false if unknown.
func (s *stitcher) timeline(chain string, trace uint64) (Timeline, bool) {
	e, ok := s.flows[flowKey{chain: chain, trace: trace}]
	if !ok || len(e.hops) == 0 {
		return Timeline{}, false
	}
	return buildTimeline(chain, trace, e.hops), true
}

// bestTimeline picks the flow for chain spanning the most distinct
// sites (ties: most recently updated) — the drill-down default.
func (s *stitcher) bestTimeline(chain string) (Timeline, bool) {
	var best Timeline
	var bestTick uint64
	found := false
	for k, e := range s.flows {
		if k.chain != chain || len(e.hops) == 0 {
			continue
		}
		tl := buildTimeline(k.chain, k.trace, e.hops)
		if !found || len(tl.Sites) > len(best.Sites) ||
			(len(tl.Sites) == len(best.Sites) && e.tick > bestTick) {
			best, bestTick, found = tl, e.tick, true
		}
	}
	return best, found
}

// timelines renders every retained flow, most recently updated first.
func (s *stitcher) timelines() []Timeline {
	type keyed struct {
		tl   Timeline
		tick uint64
	}
	out := make([]keyed, 0, len(s.flows))
	for k, e := range s.flows {
		if len(e.hops) == 0 {
			continue
		}
		out = append(out, keyed{tl: buildTimeline(k.chain, k.trace, e.hops), tick: e.tick})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tick > out[j].tick })
	tls := make([]Timeline, len(out))
	for i, k := range out {
		tls[i] = k.tl
	}
	return tls
}

// buildTimeline orders hops by arrival and derives segments: for each
// non-terminal hop an on-node interval (arrive→depart), then a transit
// interval to the next arrival. Because consecutive segments share
// endpoints, their durations telescope to exactly E2ENs = last arrival
// − first arrival.
func buildTimeline(chain string, trace uint64, hops []StitchedHop) Timeline {
	sorted := append([]StitchedHop(nil), hops...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ArriveNs != sorted[j].ArriveNs {
			return sorted[i].ArriveNs < sorted[j].ArriveNs
		}
		return sorted[i].Node < sorted[j].Node
	})
	tl := Timeline{Chain: chain, TraceID: trace, Hops: sorted}
	seenSite := make(map[string]bool)
	for _, h := range sorted {
		if !seenSite[h.Site] {
			seenSite[h.Site] = true
			tl.Sites = append(tl.Sites, h.Site)
		}
	}
	if len(sorted) == 0 {
		return tl
	}
	tl.E2ENs = sorted[len(sorted)-1].ArriveNs - sorted[0].ArriveNs
	for i, h := range sorted {
		last := i == len(sorted)-1
		depart := h.DepartNs
		if depart < h.ArriveNs {
			// Terminal or unstamped departure: the hop interval ends
			// where it began so the telescoping stays exact.
			depart = h.ArriveNs
		}
		// The terminal hop's on-node time falls outside the e2e window
		// (arrival-to-arrival), so it contributes no segment.
		if !last {
			next := sorted[i+1]
			if depart > next.ArriveNs {
				depart = next.ArriveNs
			}
			tl.Segments = append(tl.Segments,
				Segment{Kind: "hop", From: h.Node, To: h.Node, DurNs: depart - h.ArriveNs},
				Segment{Kind: "transit", From: h.Node, To: next.Node, DurNs: next.ArriveNs - depart})
		}
	}
	return tl
}
