package telemetry

import (
	"testing"
)

// hop builds a HopRecord for stitching tests.
func hop(trace uint64, chain, node string, arrive, depart int64) HopRecord {
	return HopRecord{TraceID: trace, Chain: chain, Node: node, ArriveNs: arrive, DepartNs: depart}
}

func TestBuildTimelineTelescopes(t *testing.T) {
	s := newStitcher(8)
	// A three-site path: edge at A, forwarder at B, VNF at B, forwarder
	// at C, sink back at A. Reported piecemeal by three agents.
	s.add("A", []HopRecord{
		hop(7, "mesh", "edge:client", 1000, 1100),
		hop(7, "mesh", "sink:server", 9000, 0), // terminal: no depart
	})
	s.add("B", []HopRecord{
		hop(7, "mesh", "fwd:B/fwd-fw", 2000, 2500),
		hop(7, "mesh", "vnf:fw-0", 3000, 3600),
	})
	s.add("C", []HopRecord{
		hop(7, "mesh", "fwd:C/fwd-opt", 5000, 6000),
	})

	tl, ok := s.timeline("mesh", 7)
	if !ok {
		t.Fatal("timeline not found")
	}
	if len(tl.Hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(tl.Hops))
	}
	if tl.Hops[0].Node != "edge:client" || tl.Hops[4].Node != "sink:server" {
		t.Errorf("hop order wrong: first=%s last=%s", tl.Hops[0].Node, tl.Hops[4].Node)
	}
	wantE2E := int64(9000 - 1000)
	if tl.E2ENs != wantE2E {
		t.Errorf("E2ENs = %d, want %d", tl.E2ENs, wantE2E)
	}
	// The ISSUE's exactness requirement: segment durations sum to the
	// end-to-end latency, exactly.
	var sum int64
	for _, seg := range tl.Segments {
		if seg.DurNs < 0 {
			t.Errorf("negative segment %+v", seg)
		}
		sum += seg.DurNs
	}
	if sum != tl.E2ENs {
		t.Errorf("segment sum = %d, want exactly E2E %d", sum, tl.E2ENs)
	}
	// Sites in path order: A (edge) → B → C → A dedupes to A, B, C.
	if len(tl.Sites) != 3 || tl.Sites[0] != "A" || tl.Sites[1] != "B" || tl.Sites[2] != "C" {
		t.Errorf("sites = %v, want [A B C]", tl.Sites)
	}
}

func TestBuildTimelineClampsBadDeparts(t *testing.T) {
	// A depart stamped after the next hop's arrival (clock skew between
	// reporting components) must clamp, not produce a negative transit.
	tl := buildTimeline("c", 1, []StitchedHop{
		{Site: "A", Node: "n1", ArriveNs: 100, DepartNs: 900}, // past next arrival
		{Site: "B", Node: "n2", ArriveNs: 500, DepartNs: 0},   // unstamped
		{Site: "B", Node: "n3", ArriveNs: 700, DepartNs: 650}, // before own arrival
		{Site: "C", Node: "n4", ArriveNs: 800, DepartNs: 0},
	})
	var sum int64
	for _, seg := range tl.Segments {
		if seg.DurNs < 0 {
			t.Errorf("negative segment %+v", seg)
		}
		sum += seg.DurNs
	}
	if sum != tl.E2ENs || tl.E2ENs != 700 {
		t.Errorf("sum=%d e2e=%d, want both 700", sum, tl.E2ENs)
	}
}

func TestStitcherDedupesReReportedHops(t *testing.T) {
	s := newStitcher(8)
	recs := []HopRecord{hop(1, "c", "n1", 100, 200), hop(1, "c", "n2", 300, 0)}
	s.add("A", recs)
	s.add("A", recs) // duplicate delivery of the same interval
	tl, ok := s.timeline("c", 1)
	if !ok || len(tl.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 after duplicate add", len(tl.Hops))
	}
}

func TestBestTimelinePrefersWidestSpan(t *testing.T) {
	s := newStitcher(8)
	s.add("A", []HopRecord{hop(1, "c", "n1", 100, 150)})
	s.add("A", []HopRecord{hop(2, "c", "m1", 100, 150)})
	s.add("B", []HopRecord{hop(2, "c", "m2", 300, 0)})
	s.add("C", []HopRecord{hop(2, "c", "m3", 400, 0)})
	tl, ok := s.bestTimeline("c")
	if !ok || tl.TraceID != 2 {
		t.Fatalf("bestTimeline picked trace %d, want 2 (3 sites)", tl.TraceID)
	}
	if _, ok := s.bestTimeline("nope"); ok {
		t.Error("bestTimeline found a timeline for an unknown chain")
	}
}

func TestStitcherEvictsOldestFlow(t *testing.T) {
	s := newStitcher(2)
	s.add("A", []HopRecord{hop(1, "c", "n", 1, 2)})
	s.add("A", []HopRecord{hop(2, "c", "n", 1, 2)})
	s.add("A", []HopRecord{hop(3, "c", "n", 1, 2)}) // evicts flow 1
	if _, ok := s.timeline("c", 1); ok {
		t.Error("oldest flow survived past the cap")
	}
	if _, ok := s.timeline("c", 3); !ok {
		t.Error("newest flow missing")
	}
	if got := len(s.timelines()); got != 2 {
		t.Errorf("retained flows = %d, want 2", got)
	}
}
