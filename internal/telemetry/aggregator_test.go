package telemetry

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/slo"
)

func report(site string, seq uint64, interval time.Duration) *Report {
	return &Report{
		Site:       site,
		Seq:        seq,
		IntervalNs: int64(interval),
		Healthy:    true,
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Keyed:      map[string]string{},
	}
}

func TestAggregatorCumulativeAndDedupe(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)

	r1 := report("A", 1, time.Second)
	r1.Counters["fwd.rx"] = 10
	ag.IngestAt(r1, t0)

	r2 := report("A", 2, time.Second)
	r2.Counters["fwd.rx"] = 5
	ag.IngestAt(r2, t0.Add(time.Second))

	// At-least-once delivery: a replayed seq 1 must not re-apply.
	ag.IngestAt(r1, t0.Add(2*time.Second))
	// Nor a reordered stale report.
	stale := report("A", 1, time.Second)
	stale.Counters["fwd.rx"] = 100
	ag.IngestAt(stale, t0.Add(2*time.Second))

	if v, ok := ag.Counter("A", "fwd.rx"); !ok || v != 15 {
		t.Errorf("cumulative fwd.rx = %d, want 15 (10+5, dupes ignored)", v)
	}
	if ag.ReportsMerged() != 2 {
		t.Errorf("reports merged = %d, want 2", ag.ReportsMerged())
	}
}

// TestAggregatorRebaselinesOnAgentRestart pins the restart path: a
// restarted agent resets Seq to 1 under a newer boot epoch, and the
// aggregator must merge the fresh stream instead of dropping it behind
// the old high-water mark — while still ignoring late deliveries from
// the previous boot.
func TestAggregatorRebaselinesOnAgentRestart(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)
	withEpoch := func(r *Report, epoch int64) *Report {
		r.Epoch = epoch
		return r
	}

	r1 := withEpoch(report("A", 1, time.Second), 100)
	r1.Counters["fwd.rx"] = 10
	ag.IngestAt(r1, t0)
	r2 := withEpoch(report("A", 2, time.Second), 100)
	r2.Counters["fwd.rx"] = 5
	ag.IngestAt(r2, t0.Add(time.Second))

	// The agent restarts: Seq 1 again, newer epoch. Must merge.
	r3 := withEpoch(report("A", 1, time.Second), 200)
	r3.Counters["fwd.rx"] = 7
	ag.IngestAt(r3, t0.Add(2*time.Second))
	if v, _ := ag.Counter("A", "fwd.rx"); v != 22 {
		t.Errorf("cumulative fwd.rx after restart = %d, want 22 (restart report merged)", v)
	}
	if ag.ReportsMerged() != 3 {
		t.Errorf("reports merged = %d, want 3", ag.ReportsMerged())
	}

	// A late delivery from the previous boot must still be ignored.
	late := withEpoch(report("A", 3, time.Second), 100)
	late.Counters["fwd.rx"] = 100
	ag.IngestAt(late, t0.Add(3*time.Second))
	if v, _ := ag.Counter("A", "fwd.rx"); v != 22 {
		t.Errorf("late old-boot report applied: fwd.rx = %d, want 22", v)
	}

	// And a replay within the new boot dedupes by sequence as before.
	ag.IngestAt(r3, t0.Add(4*time.Second))
	if ag.ReportsMerged() != 3 {
		t.Errorf("replayed new-boot report merged: %d, want 3", ag.ReportsMerged())
	}

	// The restarted site is fresh, not stale: its row advances.
	row := ag.HealthMatrix(t0.Add(3 * time.Second))[0]
	if row.Stale || row.LastSeq != 1 || row.Reports != 3 {
		t.Errorf("post-restart row = %+v, want fresh seq=1 reports=3", row)
	}
}

// TestAggregatorDedupesAlerts pins drill-down alert retention: the
// agent's inclusive ?since= cutoff can ship the same state change
// twice, and a fired alert ships again when it resolves — retention
// keeps one entry per (chain, FiredAt), newest version winning.
func TestAggregatorDedupesAlerts(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)
	fired := slo.Alert{Chain: "c1", Reason: "drops", FiredAt: t0}

	r1 := report("A", 1, time.Second)
	r1.Alerts = []slo.Alert{fired}
	ag.IngestAt(r1, t0)
	// Boundary double-ship: the same alert again in the next report.
	r2 := report("A", 2, time.Second)
	r2.Alerts = []slo.Alert{fired}
	ag.IngestAt(r2, t0.Add(time.Second))

	d, _ := ag.Site("A", t0.Add(time.Second))
	if len(d.Alerts) != 1 {
		t.Fatalf("retained alerts = %d, want 1 (duplicate dropped)", len(d.Alerts))
	}

	// Resolution ships the same identity with ResolvedAt set: replaces.
	resolved := fired
	resolved.ResolvedAt = t0.Add(5 * time.Second)
	r3 := report("A", 3, time.Second)
	r3.Alerts = []slo.Alert{resolved}
	ag.IngestAt(r3, t0.Add(5*time.Second))
	d, _ = ag.Site("A", t0.Add(5*time.Second))
	if len(d.Alerts) != 1 || d.Alerts[0].ResolvedAt.IsZero() {
		t.Errorf("retained alerts = %+v, want one resolved entry", d.Alerts)
	}

	// A genuinely new firing (different FiredAt) appends.
	again := slo.Alert{Chain: "c1", Reason: "drops", FiredAt: t0.Add(10 * time.Second)}
	r4 := report("A", 4, time.Second)
	r4.Alerts = []slo.Alert{again}
	ag.IngestAt(r4, t0.Add(10*time.Second))
	d, _ = ag.Site("A", t0.Add(10*time.Second))
	if len(d.Alerts) != 2 {
		t.Errorf("retained alerts = %d, want 2 after a new firing", len(d.Alerts))
	}
}

func TestHealthMatrixStaleness(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)
	iv := 100 * time.Millisecond

	ag.IngestAt(report("A", 1, iv), t0)
	b := report("B", 1, iv)
	b.Healthy = false
	ag.IngestAt(b, t0)

	// Within the bound (2 intervals of the site's own reporting period)
	// nobody is stale; B is degraded by its shipped verdict.
	m := ag.Model(t0.Add(iv))
	if m.SitesStale != 0 {
		t.Fatalf("stale at 1 interval = %d, want 0", m.SitesStale)
	}
	rows := map[string]string{}
	for _, s := range m.Sites {
		rows[s.Site] = s.Status
	}
	if rows["A"] != "ok" || rows["B"] != "degraded" {
		t.Errorf("statuses = %v, want A=ok B=degraded", rows)
	}

	// B keeps reporting; A goes dark. Just past 2 of A's intervals, A is
	// stale — the ISSUE's "within 2 reporting intervals" bound.
	ag.IngestAt(func() *Report { r := report("B", 2, iv); r.Healthy = false; return r }(), t0.Add(2*iv))
	now := t0.Add(2*iv + time.Millisecond)
	matrix := ag.HealthMatrix(now)
	byName := map[string]SiteHealth{}
	for _, h := range matrix {
		byName[h.Site] = h
	}
	if !byName["A"].Stale || byName["A"].Status != "stale" {
		t.Errorf("A = %+v, want stale after 2 intervals dark", byName["A"])
	}
	if byName["B"].Stale {
		t.Errorf("B = %+v, want fresh (reported at 2iv)", byName["B"])
	}
	if got := ag.Model(now).SitesStale; got != 1 {
		t.Errorf("SitesStale = %d, want 1", got)
	}
}

func TestChainAggregatesAcrossSites(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)

	mk := func(site string, seq uint64, tx uint64, lat time.Duration) *Report {
		r := report(site, seq, time.Second)
		inst := "forwarder.f.chain.mesh.tx"
		r.Counters[inst] = tx
		r.Keyed[inst] = "forwarder.f.chain.<chain>.tx"
		h := metrics.NewHistogram()
		for i := 0; i < 50; i++ {
			h.Observe(lat)
		}
		hi := "trace.chain.mesh.e2e_ms"
		r.Histograms = map[string]metrics.HistogramSummary{hi: h.Summarize(32)}
		r.Keyed[hi] = "trace.chain.<chain>.e2e_ms"
		return r
	}
	ag.IngestAt(mk("A", 1, 100, time.Millisecond), t0)
	ag.IngestAt(mk("B", 1, 40, 3*time.Millisecond), t0)

	m := ag.Model(t0)
	if len(m.Chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(m.Chains))
	}
	c := m.Chains[0]
	if c.Chain != "mesh" {
		t.Fatalf("chain = %q, want mesh", c.Chain)
	}
	if len(c.Sites) != 2 || c.Sites[0] != "A" || c.Sites[1] != "B" {
		t.Errorf("chain sites = %v, want [A B]", c.Sites)
	}
	if c.Counters["tx"] != 140 {
		t.Errorf("summed tx = %d, want 140", c.Counters["tx"])
	}
	e2e, ok := c.Histograms["e2e_ms"]
	if !ok {
		t.Fatalf("merged e2e histogram missing: %v", c.Histograms)
	}
	if e2e.Count != 100 {
		t.Errorf("merged count = %d, want 100", e2e.Count)
	}
	if e2e.MinNs != int64(time.Millisecond) || e2e.MaxNs != int64(3*time.Millisecond) {
		t.Errorf("merged min/max = %d/%d, want 1ms/3ms", e2e.MinNs, e2e.MaxNs)
	}
}

func TestSpanTreeStitchesAcrossSites(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)

	// GS report carries the root span; two LS reports carry children.
	gs := report("GSB", 1, time.Second)
	gs.Spans = []obs.Span{{ID: 10, Name: "create-chain", StartNs: 100, EndNs: 900}}
	ag.IngestAt(gs, t0)
	a := report("A", 1, time.Second)
	a.Spans = []obs.Span{{ID: 11, Parent: 10, Name: "apply-route:A", StartNs: 200, EndNs: 400}}
	ag.IngestAt(a, t0)
	b := report("B", 1, time.Second)
	b.Spans = []obs.Span{
		{ID: 12, Parent: 10, Name: "apply-route:B", StartNs: 200, EndNs: 500},
		{ID: 13, Parent: 12, Name: "install-rules", StartNs: 250, EndNs: 450},
	}
	ag.IngestAt(b, t0)

	tree := ag.SpanTree(10)
	if len(tree) != 4 {
		t.Fatalf("tree size = %d, want 4", len(tree))
	}
	if tree[0].Name != "create-chain" {
		t.Errorf("root = %q", tree[0].Name)
	}
	// Breadth-first: both apply-route spans before the grandchild.
	if tree[1].ID != 11 || tree[2].ID != 12 || tree[3].ID != 13 {
		t.Errorf("order = %d,%d,%d, want 11,12,13", tree[1].ID, tree[2].ID, tree[3].ID)
	}
	if ag.SpanTree(999) != nil {
		t.Error("unknown root returned a tree")
	}
}

func TestTimelineDrillDownWithWindowSpans(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)
	r := report("A", 1, time.Second)
	r.Hops = []HopRecord{
		{TraceID: 5, Chain: "mesh", Node: "edge:c", ArriveNs: 1000, DepartNs: 1100},
		{TraceID: 5, Chain: "mesh", Node: "sink:s", ArriveNs: 2000},
	}
	r.Spans = []obs.Span{
		{ID: 1, Name: "inside", StartNs: 1200, EndNs: 1300},
		{ID: 2, Name: "outside", StartNs: 5000, EndNs: 6000},
	}
	ag.IngestAt(r, t0)

	tl, ok := ag.Timeline("mesh", 0) // trace 0 → best flow for chain
	if !ok {
		t.Fatal("no timeline for mesh")
	}
	if tl.TraceID != 5 || tl.E2ENs != 1000 {
		t.Errorf("timeline = trace %d e2e %d, want 5/1000", tl.TraceID, tl.E2ENs)
	}
	if len(tl.Spans) != 1 || tl.Spans[0].Name != "inside" {
		t.Errorf("window spans = %+v, want just the overlapping one", tl.Spans)
	}
	if len(ag.Timelines()) != 1 {
		t.Errorf("timelines = %d, want 1", len(ag.Timelines()))
	}
	if _, ok := ag.Timeline("mesh", 999); ok {
		t.Error("unknown trace produced a timeline")
	}
}

func TestSiteDetailDrillDown(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{RetainedSpans: 2})
	t0 := time.Unix(1000, 0)
	r := report("A", 1, time.Second)
	r.Counters["x"] = 7
	r.Gauges["g"] = 1.5
	h := metrics.NewHistogram()
	h.Observe(time.Millisecond)
	r.Histograms = map[string]metrics.HistogramSummary{"lat": h.Summarize(16)}
	r.Spans = []obs.Span{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}, {ID: 3, Name: "c"}}
	ag.IngestAt(r, t0)

	d, ok := ag.Site("A", t0)
	if !ok {
		t.Fatal("site A missing")
	}
	if d.Counters["x"] != 7 || d.Gauges["g"] != 1.5 {
		t.Errorf("detail values wrong: %+v %+v", d.Counters, d.Gauges)
	}
	if d.Histograms["lat"].Count != 1 {
		t.Errorf("detail histogram = %+v", d.Histograms["lat"])
	}
	// Retention cap keeps the newest spans.
	if len(d.Spans) != 2 || d.Spans[0].Name != "b" {
		t.Errorf("retained spans = %+v, want newest 2", d.Spans)
	}
	if _, ok := ag.Site("Z", t0); ok {
		t.Error("unknown site returned a detail")
	}
}

var fleetPromSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

func TestFleetPrometheusExposition(t *testing.T) {
	ag := NewAggregator(AggregatorConfig{})
	t0 := time.Unix(1000, 0)
	for i, site := range []string{"A", "B"} {
		r := report(site, 1, time.Second)
		r.Counters["fwd.rx"] = uint64(10 * (i + 1))
		r.Counters["chain.mesh.drops"] = 3
		r.Keyed["chain.mesh.drops"] = "chain.<chain>.drops"
		// A key slot whose label name needs sanitising to the
		// Prometheus label charset.
		r.Counters["lat.mesh.tx"] = 4
		r.Keyed["lat.mesh.tx"] = "lat.<chain-id>.tx"
		r.Gauges["runner.depth"] = float64(i)
		h := metrics.NewHistogram()
		h.Observe(2 * time.Millisecond)
		r.Histograms = map[string]metrics.HistogramSummary{"bus.latency": h.Summarize(8)}
		ag.IngestAt(r, t0)
	}

	var sb strings.Builder
	if err := ag.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE fwd_rx counter\n",
		`fwd_rx{site="A"} 10`,
		`fwd_rx{site="B"} 20`,
		`chain_drops{chain="mesh",site="A"} 3`,
		`lat_tx{chain_id="mesh",site="A"} 4`,
		`runner_depth{site="B"} 1`,
		"# TYPE bus_latency_seconds summary\n",
		`bus_latency_seconds{site="A",quantile="0.5"}`,
		`bus_latency_seconds{site="A",quantile="0.9"}`,
		`bus_latency_seconds{site="A",quantile="0.99"}`,
		`bus_latency_seconds_count{site="A"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Exactly one TYPE header per family, and every line conformant.
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seenType[name] {
				t.Errorf("duplicate TYPE header for %s", name)
			}
			seenType[name] = true
			continue
		}
		if !fleetPromSample.MatchString(line) {
			t.Errorf("non-conformant sample line %q", line)
		}
	}
}

func TestAggregatorRegisterMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	ag := NewAggregator(AggregatorConfig{})
	ag.RegisterMetrics(reg)
	ag.IngestAt(report("A", 1, time.Second), time.Now())
	snap := reg.Snapshot()
	if snap.Counters["telemetry.reports_merged"] != 1 {
		t.Errorf("reports_merged = %d, want 1", snap.Counters["telemetry.reports_merged"])
	}
	if snap.Gauges["fleet.sites"] != 1 {
		t.Errorf("fleet.sites = %g, want 1", snap.Gauges["fleet.sites"])
	}
	if _, ok := snap.Gauges["fleet.sites_stale"]; !ok {
		t.Error("fleet.sites_stale not registered")
	}
	if _, ok := snap.Counters["telemetry.sheds"]; !ok {
		t.Error("telemetry.sheds not registered")
	}
}
