package telemetry

import (
	"fmt"
	"testing"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/simnet"
)

func newTestFabric(t *testing.T, sites ...simnet.SiteID) *bus.Bus {
	t.Helper()
	n := simnet.New(1)
	t.Cleanup(n.Close)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			n.SetPath(a, b, simnet.PathProfile{Delay: time.Millisecond})
		}
	}
	b := bus.New(n)
	for _, s := range sites {
		if err := b.AddSite(s); err != nil {
			t.Fatalf("AddSite(%s): %v", s, err)
		}
	}
	return b
}

// TestSlowTelemetrySubscriberShedsNotBlocks is the shed-never-block
// guarantee end to end: a telemetry subscriber whose queue is full (a
// wedged aggregator) must drop reports — counted as telemetry.sheds —
// while a control-plane topic on the same bus keeps delivering without
// delay. Run under -race in CI's telemetry matrix row.
func TestSlowTelemetrySubscriberShedsNotBlocks(t *testing.T) {
	const gsb, site = simnet.SiteID("GSB"), simnet.SiteID("A")
	b := newTestFabric(t, gsb, site)

	reg := metrics.NewRegistry()
	sheds := reg.Counter("telemetry.sheds")

	// The wedged aggregator: queue of 1, never drained.
	telSub, err := b.Subscribe(gsb, Topic(gsb), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer telSub.Cancel()
	telSub.SetOnDrop(func() { sheds.Inc() })

	// A healthy control-plane feed on the same fabric.
	ctrlTopic := bus.MakeTopic("health", "all", "global", gsb, "heartbeats")
	ctrlSub, err := b.Subscribe(gsb, ctrlTopic, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlSub.Cancel()

	const n = 12
	agent := NewAgent(AgentConfig{
		Site: site, Registry: metrics.NewRegistry(),
		Bus: b, Topic: Topic(gsb),
	})
	for i := 0; i < n; i++ {
		agent.publish(agent.collect(time.Unix(int64(100+i), 0)))
		if err := b.Publish(site, ctrlTopic, fmt.Sprintf("hb-%d", i), 16); err != nil {
			t.Fatalf("control publish %d: %v", i, err)
		}
	}
	if agent.ReportsSent() != n {
		t.Fatalf("agent sent %d/%d — Publish blocked or failed", agent.ReportsSent(), n)
	}

	// Every control-plane message arrives promptly despite the wedged
	// telemetry subscriber next door.
	got := 0
	deadline := time.After(5 * time.Second)
	for got < n {
		select {
		case _, ok := <-ctrlSub.Ch():
			if !ok {
				t.Fatalf("control channel closed after %d/%d", got, n)
			}
			got++
		case <-deadline:
			t.Fatalf("control plane delayed: %d/%d heartbeats after 5s", got, n)
		}
	}

	// The telemetry reports beyond the queue's single slot were shed and
	// counted. Delivery is async; poll for the counter to settle.
	wait := time.Now().Add(5 * time.Second)
	for sheds.Load() < n-1 {
		if time.Now().After(wait) {
			t.Fatalf("telemetry.sheds = %d, want ≥ %d (queue holds 1 of %d)",
				sheds.Load(), n-1, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The one queued report is still there, undropped.
	select {
	case _, ok := <-telSub.Ch():
		if !ok {
			t.Fatal("telemetry channel closed")
		}
	default:
		t.Error("queued telemetry report missing")
	}
}

// TestAgentAggregatorOverBus is the full loop: a site agent publishing
// over the WAN fabric into an attached aggregator at the GS site.
func TestAgentAggregatorOverBus(t *testing.T) {
	const gsb, site = simnet.SiteID("GSB"), simnet.SiteID("A")
	b := newTestFabric(t, gsb, site)

	ag := NewAggregator(AggregatorConfig{})
	stopAg, err := ag.Attach(b, gsb, Topic(gsb), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer stopAg()

	reg := metrics.NewRegistry()
	c := reg.Counter("fwd.rx")
	agent := NewAgent(AgentConfig{
		Site: site, Registry: reg, Bus: b, Topic: Topic(gsb),
		Interval: 5 * time.Millisecond,
	})
	stop := agent.Start()
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for ag.ReportsMerged() < 3 {
		c.Inc()
		if time.Now().After(deadline) {
			t.Fatalf("aggregator merged %d reports in 5s, want ≥ 3", ag.ReportsMerged())
		}
		time.Sleep(time.Millisecond)
	}
	m := ag.Model(time.Now())
	if len(m.Sites) != 1 || m.Sites[0].Site != string(site) {
		t.Fatalf("fleet sites = %+v, want just %s", m.Sites, site)
	}
	if m.Sites[0].Status != "ok" || m.SitesStale != 0 {
		t.Errorf("site row = %+v, want fresh ok", m.Sites[0])
	}
	if v, ok := ag.Counter(string(site), "fwd.rx"); !ok || v == 0 {
		t.Errorf("cumulative fwd.rx = %d,%v — deltas not accumulating", v, ok)
	}
}
