// Package telemetry is the fleet observability plane: per-site agents
// that fold the local metrics registry, recent control-plane spans and
// events, open SLO alerts, and sampled packet-trace hops into compact,
// delta-encoded reports on a dedicated bus topic, and a GS-side
// aggregator that merges those reports into a topology-annotated fleet
// model — per-site rollups, per-chain cross-site aggregates, a health
// matrix driven by report staleness, and cross-site trace stitching.
// The plane is strictly best-effort: agents pace themselves, cap report
// size, and shed (never block) when the bus or the aggregator is slow,
// so telemetry can never back-pressure the control or data planes it
// observes.
package telemetry

import (
	"sync"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/packet"
	"switchboard/internal/simnet"
	"switchboard/internal/slo"
)

// Topic returns the fleet telemetry feed, homed at the Global
// Switchboard's site (like the heartbeat feed) so every site's reports
// cross the wide area exactly once toward the aggregator.
func Topic(gsbSite simnet.SiteID) bus.Topic {
	return bus.MakeTopic("telemetry", "all", "global", gsbSite, "reports")
}

// HopRecord is one packet-trace hop as observed by a site's local
// components, keyed by the flow's trace ID and chain so the aggregator
// can join hops from different sites into one timeline.
type HopRecord struct {
	// TraceID identifies the sampled flow (unique per trace sampler).
	TraceID uint64 `json:"trace_id"`
	// Chain labels the service chain the flow belongs to.
	Chain string `json:"chain"`
	// Node names the hop ("fwd:A/fwd-edge", "vnf:fw-0", "sink:server").
	Node string `json:"node"`
	// ArriveNs and DepartNs bound the hop (Unix nanoseconds; DepartNs
	// is 0 for terminal hops that never forwarded the packet).
	ArriveNs int64 `json:"arrive_ns"`
	DepartNs int64 `json:"depart_ns,omitempty"`
}

// Report is one telemetry interval from one site: the unit published on
// the bus topic and merged by the aggregator. Counters are
// delta-encoded against the site's previous report (only names that
// advanced are shipped); histograms travel as bounded mergeable
// summaries; spans, events, alerts and hops are the increments since
// the previous report, each capped.
type Report struct {
	// Site is the reporting site.
	Site string `json:"site"`
	// Epoch identifies the agent's boot (its first capture instant,
	// Unix ns): Seq restarts at 1 when a site's agent restarts, and the
	// epoch changing is how the aggregator tells a restart apart from a
	// replayed or reordered delivery.
	Epoch int64 `json:"epoch,omitempty"`
	// Seq increments per report from this site within one Epoch; the
	// aggregator ignores duplicates and reordered deliveries by
	// sequence.
	Seq uint64 `json:"seq"`
	// TakenAtNs is when the agent captured the report (Unix ns).
	TakenAtNs int64 `json:"taken_at_ns"`
	// IntervalNs is the agent's reporting interval, so the aggregator
	// can derive a staleness bound without out-of-band configuration.
	IntervalNs int64 `json:"interval_ns"`
	// Healthy is the site's /healthz-equivalent verdict at capture.
	Healthy bool `json:"healthy"`
	// Counters holds per-name deltas since the previous report.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges holds current gauge values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms holds mergeable summaries of the site's histograms.
	Histograms map[string]metrics.HistogramSummary `json:"histograms,omitempty"`
	// Keyed maps keyed-family instance names appearing above to their
	// family pattern, mirroring metrics.Snapshot.Keyed, so the
	// aggregator can fold per-chain instances without guessing.
	Keyed map[string]string `json:"keyed,omitempty"`
	// Spans and Events are control-plane records new since the previous
	// report, oldest first, capped.
	Spans  []obs.Span  `json:"spans,omitempty"`
	Events []obs.Event `json:"events,omitempty"`
	// Alerts are SLO alerts that fired or resolved since the previous
	// report (the /debug/alerts?since= increment).
	Alerts []slo.Alert `json:"alerts,omitempty"`
	// Hops are packet-trace hops observed at this site since the
	// previous report.
	Hops []HopRecord `json:"hops,omitempty"`
}

// TraceBuffer is the bounded staging ring between a site's trace
// harvesting and its telemetry agent: components record hops as flows
// complete, the agent drains the ring once per interval. When the ring
// is full the oldest records are overwritten — trace telemetry sheds
// under load like everything else in this plane.
type TraceBuffer struct {
	mu    sync.Mutex
	recs  []HopRecord
	start int // index of oldest record
	n     int // live records
	cap   int
}

// DefaultTraceBufferCap bounds hop records staged between agent
// intervals when NewTraceBuffer is given a cap < 1.
const DefaultTraceBufferCap = 2048

// NewTraceBuffer returns a ring holding at most cap hop records
// (< 1 → DefaultTraceBufferCap).
func NewTraceBuffer(cap int) *TraceBuffer {
	if cap < 1 {
		cap = DefaultTraceBufferCap
	}
	return &TraceBuffer{recs: make([]HopRecord, cap), cap: cap}
}

// Record stages one hop record. Safe for concurrent use.
func (b *TraceBuffer) Record(rec HopRecord) {
	b.mu.Lock()
	if b.n < b.cap {
		b.recs[(b.start+b.n)%b.cap] = rec
		b.n++
	} else {
		b.recs[b.start] = rec
		b.start = (b.start + 1) % b.cap
	}
	b.mu.Unlock()
}

// RecordTrace stages every hop of a completed trace under the given
// chain label — the convenience used by sinks that harvest whole
// traces. Safe for concurrent use.
func (b *TraceBuffer) RecordTrace(chain string, t *packet.Trace) {
	if t == nil {
		return
	}
	for _, h := range t.Hops {
		b.Record(HopRecord{
			TraceID:  t.ID,
			Chain:    chain,
			Node:     h.Node,
			ArriveNs: h.ArriveNs,
			DepartNs: h.DepartNs,
		})
	}
}

// Drain removes and returns up to max staged records, oldest first
// (max < 1 → everything). Safe for concurrent use.
func (b *TraceBuffer) Drain(max int) []HopRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.n
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]HopRecord, n)
	for i := 0; i < n; i++ {
		out[i] = b.recs[(b.start+i)%b.cap]
	}
	b.start = (b.start + n) % b.cap
	b.n -= n
	return out
}

// Len returns the number of staged records. Safe for concurrent use.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
