package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/simnet"
	"switchboard/internal/slo"
)

// captureBus is a PubSub stub that records published reports.
type captureBus struct {
	mu   sync.Mutex
	pubs []*Report
	err  error
}

func (c *captureBus) Subscribe(simnet.SiteID, bus.Topic, int) (*bus.Subscription, error) {
	panic("captureBus does not subscribe")
}

func (c *captureBus) Publish(_ simnet.SiteID, _ bus.Topic, payload any, _ int) error {
	if c.err != nil {
		return c.err
	}
	c.mu.Lock()
	c.pubs = append(c.pubs, payload.(*Report))
	c.mu.Unlock()
	return nil
}

func (c *captureBus) WANMessages() uint64 { return 0 }

func (c *captureBus) published() []*Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Report(nil), c.pubs...)
}

func testAgent(cfg AgentConfig) *Agent {
	if cfg.Site == "" {
		cfg.Site = "A"
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Bus == nil {
		cfg.Bus = &captureBus{}
	}
	if cfg.Topic == "" {
		cfg.Topic = Topic("GSB")
	}
	return NewAgent(cfg)
}

func TestAgentDeltaEncodesCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("fwd.rx")
	quiet := reg.Counter("fwd.quiet")
	_ = quiet
	a := testAgent(AgentConfig{Registry: reg})

	c.Add(10)
	r1 := a.collect(time.Unix(100, 0))
	if r1.Seq != 1 || r1.Counters["fwd.rx"] != 10 {
		t.Fatalf("first report: seq=%d rx=%d, want 1/10", r1.Seq, r1.Counters["fwd.rx"])
	}
	if _, ok := r1.Counters["fwd.quiet"]; ok {
		t.Error("zero counter shipped; deltas should skip names that never advanced")
	}

	c.Add(5)
	r2 := a.collect(time.Unix(101, 0))
	if r2.Counters["fwd.rx"] != 5 {
		t.Errorf("second report delta = %d, want 5", r2.Counters["fwd.rx"])
	}

	// No advance → name absent entirely.
	r3 := a.collect(time.Unix(102, 0))
	if _, ok := r3.Counters["fwd.rx"]; ok {
		t.Error("unchanged counter shipped a delta")
	}

	// Re-registration reset: value below the remembered base restarts
	// the delta from zero instead of underflowing.
	reg.CounterFunc("fwd.rx", func() uint64 { return 3 })
	r4 := a.collect(time.Unix(103, 0))
	if r4.Counters["fwd.rx"] != 3 {
		t.Errorf("post-reset delta = %d, want 3", r4.Counters["fwd.rx"])
	}
}

func TestAgentFilterCarvesSiteView(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("forwarder.a.rx").Add(1)
	reg.Counter("forwarder.b.rx").Add(2)
	reg.GaugeFunc("forwarder.a.depth", func() float64 { return 4 })
	reg.Histogram("forwarder.b.lat").Observe(time.Millisecond)
	a := testAgent(AgentConfig{
		Registry: reg,
		Filter:   func(name string) bool { return strings.HasPrefix(name, "forwarder.a.") },
	})
	r := a.collect(time.Unix(1, 0))
	if _, ok := r.Counters["forwarder.b.rx"]; ok {
		t.Error("filter leaked another site's counter")
	}
	if _, ok := r.Histograms["forwarder.b.lat"]; ok {
		t.Error("filter leaked another site's histogram")
	}
	if r.Counters["forwarder.a.rx"] != 1 || r.Gauges["forwarder.a.depth"] != 4 {
		t.Errorf("filtered view missing own metrics: %+v %+v", r.Counters, r.Gauges)
	}
}

func TestAgentIncrementalSpansEventsAlerts(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := obs.NewRecorder(64, 64, reg)
	var drops atomic.Uint64
	ev := slo.New(slo.Config{FireAfter: 1, ResolveAfter: 100})
	h := metrics.NewHistogram()
	ev.Track(slo.ChainSLO{Chain: "c1", Budget: time.Second, E2E: h, Drops: drops.Load})

	a := testAgent(AgentConfig{Registry: reg, Recorder: rec, SLO: ev, MaxSpans: 2})

	rec.Start("s1", "", 0).End()
	rec.Start("s2", "", 0).End()
	rec.Start("s3", "", 0).End()
	rec.Log("e1")

	ev.Evaluate(time.Unix(10, 0)) // baseline interval
	drops.Add(5)
	ev.Evaluate(time.Unix(11, 0)) // breach → fires (FireAfter 1)

	r1 := a.collect(time.Unix(100, 0))
	if len(r1.Spans) != 2 {
		t.Fatalf("spans = %d, want MaxSpans cap of 2", len(r1.Spans))
	}
	// Cap keeps the newest spans.
	if r1.Spans[0].Name != "s2" || r1.Spans[1].Name != "s3" {
		t.Errorf("span cap kept %q,%q, want newest s2,s3", r1.Spans[0].Name, r1.Spans[1].Name)
	}
	if len(r1.Events) != 1 || r1.Events[0].Name != "e1" {
		t.Errorf("events = %+v, want [e1]", r1.Events)
	}
	if len(r1.Alerts) != 1 || r1.Alerts[0].Chain != "c1" {
		t.Fatalf("alerts = %+v, want the fired c1 alert", r1.Alerts)
	}

	// Second interval with nothing new: all increments empty.
	r2 := a.collect(time.Unix(200, 0))
	if len(r2.Spans) != 0 || len(r2.Events) != 0 || len(r2.Alerts) != 0 {
		t.Errorf("second interval re-shipped: %d spans %d events %d alerts",
			len(r2.Spans), len(r2.Events), len(r2.Alerts))
	}

	// New span after the cursor ships alone.
	rec.Start("s4", "", 0).End()
	r3 := a.collect(time.Unix(300, 0))
	if len(r3.Spans) != 1 || r3.Spans[0].Name != "s4" {
		t.Errorf("third interval spans = %+v, want just s4", r3.Spans)
	}
}

func TestAgentShedsOnFullQueue(t *testing.T) {
	reg := metrics.NewRegistry()
	a := testAgent(AgentConfig{Registry: reg, Queue: 1})
	a.RegisterMetrics(reg)
	// No publisher goroutine running: the queue fills at 1.
	a.Flush(time.Unix(1, 0))
	a.Flush(time.Unix(2, 0))
	a.Flush(time.Unix(3, 0))
	if got := a.Sheds(); got != 2 {
		t.Errorf("sheds = %d, want 2", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["telemetry.sheds"] != 2 {
		t.Errorf("telemetry.sheds = %d, want 2", snap.Counters["telemetry.sheds"])
	}
}

func TestAgentShedsOnPublishError(t *testing.T) {
	cb := &captureBus{err: errTest}
	a := testAgent(AgentConfig{Bus: cb})
	a.publish(a.collect(time.Unix(1, 0)))
	if a.Sheds() != 1 || a.ReportsSent() != 0 {
		t.Errorf("sheds=%d sent=%d, want 1/0 on publish error", a.Sheds(), a.ReportsSent())
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "publish refused" }

func TestAgentTrimsOversizedReports(t *testing.T) {
	tb := NewTraceBuffer(4096)
	for i := 0; i < 2000; i++ {
		tb.Record(HopRecord{TraceID: uint64(i), Chain: "c", Node: "node-with-a-long-name", ArriveNs: int64(i), DepartNs: int64(i + 1)})
	}
	cb := &captureBus{}
	a := testAgent(AgentConfig{Bus: cb, Traces: tb, MaxReportBytes: 8 << 10, MaxHops: 4096})
	r := a.collect(time.Unix(1, 0))
	if len(r.Hops) != 2000 {
		t.Fatalf("staged hops = %d, want 2000", len(r.Hops))
	}
	size := a.sizeAndTrim(r)
	if size > 8<<10 {
		t.Errorf("trimmed size = %d, want ≤ %d", size, 8<<10)
	}
	if len(r.Hops) >= 2000 {
		t.Error("trim did not drop any hops")
	}
	// Trim keeps the newest records.
	if last := r.Hops[len(r.Hops)-1]; last.TraceID != 1999 {
		t.Errorf("newest hop lost in trim: last trace = %d", last.TraceID)
	}
}

// TestAgentTrimConvergesOnUntrimmableBase pins the pathological case:
// the untrimmable base sections (counters) alone exceed MaxReportBytes
// while a single hop and alert remain. Ceil-halving must empty the
// variable sections and return instead of busy-looping forever on a
// report that can never fit.
func TestAgentTrimConvergesOnUntrimmableBase(t *testing.T) {
	reg := metrics.NewRegistry()
	for i := 0; i < 64; i++ {
		reg.Counter("very.long.untrimmable.counter.name." + strings.Repeat("x", i+1)).Inc()
	}
	a := testAgent(AgentConfig{Registry: reg, MaxReportBytes: 512})
	r := a.collect(time.Unix(1, 0))
	r.Hops = []HopRecord{{TraceID: 1, Chain: "c", Node: "n", ArriveNs: 1}}
	r.Alerts = []slo.Alert{{Chain: "c", FiredAt: time.Unix(1, 0)}}
	r.Spans = []obs.Span{{ID: 1, Name: "s"}}
	r.Events = []obs.Event{{Name: "e", AtNs: 1}}

	size := a.sizeAndTrim(r)
	if size <= 512 {
		t.Fatalf("base sections fit in %d bytes; test needs an untrimmable base > cap", size)
	}
	if len(r.Hops) != 0 || len(r.Alerts) != 0 || len(r.Spans) != 0 || len(r.Events) != 0 {
		t.Errorf("variable sections not emptied: %d hops %d alerts %d spans %d events",
			len(r.Hops), len(r.Alerts), len(r.Spans), len(r.Events))
	}
}

// TestAgentStampsBootEpoch pins the restart signal: every report from
// one agent carries the same non-zero epoch (its first capture
// instant), so the aggregator can tell a restarted agent's Seq=1 apart
// from a replayed delivery.
func TestAgentStampsBootEpoch(t *testing.T) {
	a := testAgent(AgentConfig{})
	r1 := a.collect(time.Unix(100, 0))
	r2 := a.collect(time.Unix(200, 0))
	if r1.Epoch == 0 {
		t.Fatal("first report has no boot epoch")
	}
	if r2.Epoch != r1.Epoch {
		t.Errorf("epoch drifted within one boot: %d then %d", r1.Epoch, r2.Epoch)
	}
	restarted := testAgent(AgentConfig{})
	r3 := restarted.collect(time.Unix(300, 0))
	if r3.Epoch <= r1.Epoch {
		t.Errorf("restarted agent epoch %d not newer than %d", r3.Epoch, r1.Epoch)
	}
}

func TestAgentStartPacesAndStops(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("x")
	cb := &captureBus{}
	a := testAgent(AgentConfig{Registry: reg, Bus: cb, Interval: 5 * time.Millisecond})
	stop := a.Start()
	deadline := time.Now().Add(2 * time.Second)
	for a.ReportsSent() < 3 {
		c.Inc()
		if time.Now().After(deadline) {
			t.Fatalf("agent sent %d reports in 2s, want ≥ 3", a.ReportsSent())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	pubs := cb.published()
	if len(pubs) < 3 {
		t.Fatalf("published = %d, want ≥ 3", len(pubs))
	}
	for i := 1; i < len(pubs); i++ {
		if pubs[i].Seq <= pubs[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", pubs[i-1].Seq, pubs[i].Seq)
		}
	}
}
