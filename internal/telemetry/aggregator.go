package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"switchboard/internal/bus"
	"switchboard/internal/metrics"
	"switchboard/internal/obs"
	"switchboard/internal/simnet"
	"switchboard/internal/slo"
)

// Aggregator defaults.
const (
	// DefaultStaleAfterIntervals marks a site stale when no report has
	// arrived for this many of its own reporting intervals — the ISSUE's
	// "stale within 2 reporting intervals" bound.
	DefaultStaleAfterIntervals = 2
	// DefaultRetainedSpans / DefaultRetainedEvents / DefaultRetainedAlerts
	// bound what the aggregator keeps per site for drill-downs.
	DefaultRetainedSpans  = 512
	DefaultRetainedEvents = 1024
	DefaultRetainedAlerts = 256
)

// AggregatorConfig tunes the fleet aggregator. The zero value is ready.
type AggregatorConfig struct {
	// StaleAfter overrides the staleness bound; 0 derives it per site
	// as DefaultStaleAfterIntervals × the site's reported interval.
	StaleAfter time.Duration
	// MaxFlows bounds stitched flows (≤ 0 → DefaultMaxFlows).
	MaxFlows int
	// RetainedSpans, RetainedEvents, RetainedAlerts bound per-site
	// drill-down state (≤ 0 → the defaults above).
	RetainedSpans, RetainedEvents, RetainedAlerts int
	// SummarySamples bounds merged summary sketches
	// (≤ 0 → metrics.DefaultSummarySamples).
	SummarySamples int
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.MaxFlows <= 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	if c.RetainedSpans <= 0 {
		c.RetainedSpans = DefaultRetainedSpans
	}
	if c.RetainedEvents <= 0 {
		c.RetainedEvents = DefaultRetainedEvents
	}
	if c.RetainedAlerts <= 0 {
		c.RetainedAlerts = DefaultRetainedAlerts
	}
	if c.SummarySamples <= 0 {
		c.SummarySamples = metrics.DefaultSummarySamples
	}
	return c
}

// siteState is everything the aggregator retains about one site.
type siteState struct {
	epoch        int64 // reporting agent's boot epoch
	lastSeq      uint64
	lastReportAt time.Time // receive time, so a dead site's clock can't hide staleness
	intervalNs   int64
	healthy      bool
	reports      uint64
	counters     map[string]uint64 // cumulative (sum of shipped deltas)
	gauges       map[string]float64
	hists        map[string]metrics.HistogramSummary // latest per site
	keyed        map[string]string
	spans        []obs.Span
	events       []obs.Event
	alerts       []slo.Alert
}

// Aggregator merges site telemetry reports into the fleet model served
// at /fleet: per-site rollups, per-chain cross-site aggregates, the
// health matrix, and stitched trace timelines. All methods are safe for
// concurrent use.
type Aggregator struct {
	cfg AggregatorConfig

	reportsMerged *metrics.Counter
	sheds         *metrics.Counter

	mu     sync.Mutex
	sites  map[string]*siteState
	stitch *stitcher

	subMu sync.Mutex
	subs  []*bus.Subscription
	done  sync.WaitGroup
}

// NewAggregator returns an aggregator for cfg (defaults applied).
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	cfg = cfg.withDefaults()
	return &Aggregator{
		cfg:           cfg,
		reportsMerged: &metrics.Counter{},
		sheds:         &metrics.Counter{},
		sites:         make(map[string]*siteState),
		stitch:        newStitcher(cfg.MaxFlows),
	}
}

// RegisterMetrics publishes the aggregator's instruments into reg:
//
//	telemetry.reports_merged  reports merged into the fleet model
//	telemetry.sheds           reports dropped by a full subscriber
//	                          queue (create-or-get: shared with a
//	                          co-located agent's shed counter)
//	fleet.sites               sites currently known to the fleet model
//	fleet.sites_stale         sites whose reports have gone stale
func (a *Aggregator) RegisterMetrics(reg *metrics.Registry) {
	shared := reg.Counter("telemetry.sheds")
	a.mu.Lock()
	shared.Add(a.sheds.Load())
	a.sheds = shared
	a.mu.Unlock()
	reg.CounterFunc("telemetry.reports_merged", a.reportsMerged.Load)
	reg.GaugeFunc("fleet.sites", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.sites))
	})
	reg.GaugeFunc("fleet.sites_stale", func() float64 {
		return float64(a.staleCount(time.Now()))
	})
}

// ReportsMerged returns reports merged so far.
func (a *Aggregator) ReportsMerged() uint64 { return a.reportsMerged.Load() }

// Sheds returns reports shed at the subscriber queue so far.
func (a *Aggregator) Sheds() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sheds.Load()
}

// Attach subscribes the aggregator to the fleet topic at site (the GS
// site) and drains reports on a background goroutine until the returned
// stop function is called. Publications dropped because the subscriber
// queue backed up are counted as telemetry.sheds — the bus never waits
// for a slow aggregator.
func (a *Aggregator) Attach(b bus.PubSub, site simnet.SiteID, topic bus.Topic, queue int) (func(), error) {
	sub, err := b.Subscribe(site, topic, queue)
	if err != nil {
		return nil, err
	}
	sub.SetOnDrop(func() {
		a.mu.Lock()
		s := a.sheds
		a.mu.Unlock()
		s.Inc()
	})
	a.subMu.Lock()
	a.subs = append(a.subs, sub)
	a.subMu.Unlock()
	a.done.Add(1)
	go func() {
		defer a.done.Done()
		for pub := range sub.Ch() {
			if r, ok := pub.Payload.(*Report); ok {
				a.Ingest(r)
			}
		}
	}()
	return func() { sub.Cancel() }, nil
}

// Close cancels every attached subscription and waits for the drain
// goroutines.
func (a *Aggregator) Close() {
	a.subMu.Lock()
	subs := a.subs
	a.subs = nil
	a.subMu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
	a.done.Wait()
}

// Ingest merges one report at the current wall-clock receive time.
func (a *Aggregator) Ingest(r *Report) { a.IngestAt(r, time.Now()) }

// IngestAt merges one report received at now (exposed for deterministic
// tests). Duplicate or reordered deliveries — sequence numbers at or
// below the site's last merged report within the same boot epoch — are
// ignored, so at-least-once bus delivery cannot double-apply counter
// deltas. A newer epoch means the site's agent restarted and its
// sequence began again at 1: the sequence window re-baselines instead
// of dropping the fresh stream behind the old high-water mark, while
// cumulative counters keep accumulating across boots.
func (a *Aggregator) IngestAt(r *Report, now time.Time) {
	if r == nil || r.Site == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sites[r.Site]
	if !ok {
		st = &siteState{
			counters: make(map[string]uint64),
			gauges:   make(map[string]float64),
			hists:    make(map[string]metrics.HistogramSummary),
			keyed:    make(map[string]string),
		}
		a.sites[r.Site] = st
	}
	switch {
	case r.Epoch > st.epoch:
		st.epoch = r.Epoch
	case r.Epoch < st.epoch:
		// Late delivery from a previous boot.
		return
	default:
		if r.Seq <= st.lastSeq {
			return
		}
	}
	st.lastSeq = r.Seq
	st.lastReportAt = now
	st.intervalNs = r.IntervalNs
	st.healthy = r.Healthy
	st.reports++
	for n, d := range r.Counters {
		st.counters[n] += d
	}
	for n, v := range r.Gauges {
		st.gauges[n] = v
	}
	for n, h := range r.Histograms {
		st.hists[n] = h
	}
	for n, p := range r.Keyed {
		st.keyed[n] = p
	}
	st.spans = append(st.spans, r.Spans...)
	if len(st.spans) > a.cfg.RetainedSpans {
		st.spans = st.spans[len(st.spans)-a.cfg.RetainedSpans:]
	}
	st.events = append(st.events, r.Events...)
	if len(st.events) > a.cfg.RetainedEvents {
		st.events = st.events[len(st.events)-a.cfg.RetainedEvents:]
	}
	for _, al := range r.Alerts {
		st.upsertAlert(al)
	}
	if len(st.alerts) > a.cfg.RetainedAlerts {
		st.alerts = st.alerts[len(st.alerts)-a.cfg.RetainedAlerts:]
	}
	if len(r.Hops) > 0 {
		a.stitch.add(r.Site, r.Hops)
	}
	a.reportsMerged.Inc()
}

// upsertAlert retains al, replacing an already-retained alert with the
// same identity (chain + fired-at instant) rather than appending: the
// agent's inclusive ?since= cutoff can ship a state change landing
// exactly on a capture instant in two consecutive reports, and a fired
// alert legitimately ships again when it resolves — the newest version
// wins either way, so the drill-down never shows duplicates.
func (st *siteState) upsertAlert(al slo.Alert) {
	for i := range st.alerts {
		if st.alerts[i].Chain == al.Chain && st.alerts[i].FiredAt.Equal(al.FiredAt) {
			st.alerts[i] = al
			return
		}
	}
	st.alerts = append(st.alerts, al)
}

// staleBound returns how long site st may go unreported before the
// matrix marks it stale.
func (a *Aggregator) staleBound(st *siteState) time.Duration {
	if a.cfg.StaleAfter > 0 {
		return a.cfg.StaleAfter
	}
	iv := time.Duration(st.intervalNs)
	if iv <= 0 {
		iv = DefaultInterval
	}
	return DefaultStaleAfterIntervals * iv
}

func (a *Aggregator) staleCount(now time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, st := range a.sites {
		if now.Sub(st.lastReportAt) > a.staleBound(st) {
			n++
		}
	}
	return n
}

// SiteHealth is one row of the fleet health matrix.
type SiteHealth struct {
	// Site is the reporting site.
	Site string `json:"site"`
	// Status folds staleness and the shipped health verdict:
	// "ok", "degraded" (reporting but unhealthy), or "stale".
	Status string `json:"status"`
	// Healthy is the site's last shipped /healthz-equivalent verdict.
	Healthy bool `json:"healthy"`
	// Stale is true when no report arrived within the staleness bound.
	Stale bool `json:"stale"`
	// AgeMs is how long ago the last report arrived.
	AgeMs float64 `json:"age_ms"`
	// LastSeq and Reports count the site's report stream.
	LastSeq uint64 `json:"last_seq"`
	Reports uint64 `json:"reports"`
}

// SiteRollup is one site's summary row in the fleet model.
type SiteRollup struct {
	SiteHealth
	// Counters, Gauges, Histograms, Spans, Events, Alerts count the
	// retained state (full values live in the drill-down).
	Counters   int `json:"counters"`
	Gauges     int `json:"gauges"`
	Histograms int `json:"histograms"`
	Spans      int `json:"spans"`
	Events     int `json:"events"`
	Alerts     int `json:"alerts"`
}

// ChainAggregate is one chain's cross-site view: counters summed and
// latency summaries merged over every site reporting keyed metrics for
// the chain.
type ChainAggregate struct {
	// Chain is the chain key as it appears in keyed metric instances.
	Chain string `json:"chain"`
	// Sites reported metrics for this chain, sorted.
	Sites []string `json:"sites"`
	// Counters sums each keyed counter family's instances across sites,
	// keyed by the family suffix after the chain slot ("tx", "drops",
	// "ingressed", …).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Histograms merges each keyed histogram family's summaries across
	// sites, keyed and rendered like Counters ("e2e_ms", …).
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms,omitempty"`
}

// FleetModel is the JSON document served at /fleet.
type FleetModel struct {
	// TakenAtNs is when the model was rendered (Unix ns).
	TakenAtNs int64 `json:"taken_at_ns"`
	// Sites are the per-site rollups, sorted by site.
	Sites []SiteRollup `json:"sites"`
	// SitesStale counts rows with Stale set.
	SitesStale int `json:"sites_stale"`
	// Chains are the per-chain cross-site aggregates, sorted by chain.
	Chains []ChainAggregate `json:"chains"`
	// Timelines are the stitched flows, most recently updated first.
	Timelines []Timeline `json:"timelines,omitempty"`
}

// Model renders the fleet model as of now.
func (a *Aggregator) Model(now time.Time) FleetModel {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := FleetModel{TakenAtNs: now.UnixNano()}
	for site, st := range a.sites {
		h := a.healthRow(site, st, now)
		if h.Stale {
			m.SitesStale++
		}
		m.Sites = append(m.Sites, SiteRollup{
			SiteHealth: h,
			Counters:   len(st.counters),
			Gauges:     len(st.gauges),
			Histograms: len(st.hists),
			Spans:      len(st.spans),
			Events:     len(st.events),
			Alerts:     len(st.alerts),
		})
	}
	sort.Slice(m.Sites, func(i, j int) bool { return m.Sites[i].Site < m.Sites[j].Site })
	m.Chains = a.chainAggregatesLocked()
	m.Timelines = a.stitch.timelines()
	return m
}

func (a *Aggregator) healthRow(site string, st *siteState, now time.Time) SiteHealth {
	age := now.Sub(st.lastReportAt)
	h := SiteHealth{
		Site:    site,
		Healthy: st.healthy,
		Stale:   age > a.staleBound(st),
		AgeMs:   float64(age) / float64(time.Millisecond),
		LastSeq: st.lastSeq,
		Reports: st.reports,
	}
	switch {
	case h.Stale:
		h.Status = "stale"
	case !h.Healthy:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// HealthMatrix returns every site's health row, sorted by site.
func (a *Aggregator) HealthMatrix(now time.Time) []SiteHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SiteHealth, 0, len(a.sites))
	for site, st := range a.sites {
		out = append(out, a.healthRow(site, st, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// chainAggregatesLocked folds every site's keyed metric instances with
// a "chain" key slot into per-chain cross-site aggregates. Caller holds
// a.mu.
func (a *Aggregator) chainAggregatesLocked() []ChainAggregate {
	type agg struct {
		sites    map[string]bool
		counters map[string]uint64
		hists    map[string]metrics.HistogramSummary
	}
	chains := make(map[string]*agg)
	get := func(chain string) *agg {
		c, ok := chains[chain]
		if !ok {
			c = &agg{
				sites:    make(map[string]bool),
				counters: make(map[string]uint64),
				hists:    make(map[string]metrics.HistogramSummary),
			}
			chains[chain] = c
		}
		return c
	}
	for site, st := range a.sites {
		for inst, pattern := range st.keyed {
			_, label, key, ok := metrics.KeyedParts(pattern, inst)
			if !ok || label != "chain" {
				continue
			}
			suffix := familySuffix(pattern)
			if v, ok := st.counters[inst]; ok {
				c := get(key)
				c.sites[site] = true
				c.counters[suffix] += v
			}
			if h, ok := st.hists[inst]; ok {
				c := get(key)
				c.sites[site] = true
				c.hists[suffix] = c.hists[suffix].Merge(h, a.cfg.SummarySamples)
			}
		}
	}
	out := make([]ChainAggregate, 0, len(chains))
	for chain, c := range chains {
		ca := ChainAggregate{Chain: chain, Counters: c.counters}
		for site := range c.sites {
			ca.Sites = append(ca.Sites, site)
		}
		sort.Strings(ca.Sites)
		if len(c.hists) > 0 {
			ca.Histograms = make(map[string]metrics.HistogramSnapshot, len(c.hists))
			for suffix, h := range c.hists {
				ca.Histograms[suffix] = h.Snapshot()
			}
		}
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Chain < out[j].Chain })
	return out
}

// familySuffix returns the readable tail of a keyed pattern after its
// key slot ("forwarder.f1.chain.<chain>.tx" → "tx"); when the slot is
// terminal it falls back to the segment before it.
func familySuffix(pattern string) string {
	i := strings.LastIndex(pattern, "<")
	j := -1
	if i >= 0 {
		j = strings.Index(pattern[i:], ">")
	}
	if j < 0 {
		return pattern
	}
	if s := strings.Trim(pattern[i+j+1:], "."); s != "" {
		return s
	}
	segs := strings.Split(strings.Trim(pattern[:i], "."), ".")
	return segs[len(segs)-1]
}

// SiteDetail is the per-site drill-down served at /fleet/site.
type SiteDetail struct {
	SiteHealth
	// Counters are cumulative values reconstructed from shipped deltas.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges are the site's latest gauge values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms are the site's latest summaries, rendered.
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms,omitempty"`
	// Spans, Events and Alerts are the retained recent records.
	Spans  []obs.Span  `json:"spans,omitempty"`
	Events []obs.Event `json:"events,omitempty"`
	Alerts []slo.Alert `json:"alerts,omitempty"`
}

// Site renders one site's drill-down, or ok=false if unknown.
func (a *Aggregator) Site(site string, now time.Time) (SiteDetail, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sites[site]
	if !ok {
		return SiteDetail{}, false
	}
	d := SiteDetail{
		SiteHealth: a.healthRow(site, st, now),
		Counters:   make(map[string]uint64, len(st.counters)),
		Gauges:     make(map[string]float64, len(st.gauges)),
		Histograms: make(map[string]metrics.HistogramSnapshot, len(st.hists)),
		Spans:      append([]obs.Span(nil), st.spans...),
		Events:     append([]obs.Event(nil), st.events...),
		Alerts:     append([]slo.Alert(nil), st.alerts...),
	}
	for n, v := range st.counters {
		d.Counters[n] = v
	}
	for n, v := range st.gauges {
		d.Gauges[n] = v
	}
	for n, h := range st.hists {
		d.Histograms[n] = h.Snapshot()
	}
	return d, true
}

// Counter returns one site's cumulative value for a counter name.
func (a *Aggregator) Counter(site, name string) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sites[site]
	if !ok {
		return 0, false
	}
	v, ok := st.counters[name]
	return v, ok
}

// Timeline returns the stitched timeline for one flow; trace 0 picks
// the chain's widest-spanning flow. Control-plane spans from the
// timeline's sites that overlap its window are stitched in (bounded).
func (a *Aggregator) Timeline(chain string, trace uint64) (Timeline, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var tl Timeline
	var ok bool
	if trace == 0 {
		tl, ok = a.stitch.bestTimeline(chain)
	} else {
		tl, ok = a.stitch.timeline(chain, trace)
	}
	if !ok {
		return Timeline{}, false
	}
	tl.Spans = a.windowSpansLocked(tl, 32)
	return tl, true
}

// Timelines returns every stitched timeline, most recent first.
func (a *Aggregator) Timelines() []Timeline {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stitch.timelines()
}

// windowSpansLocked collects up to max control-plane spans reported by
// the timeline's sites whose interval overlaps the flow's window —
// the "what was the control plane doing while this flow was slow"
// join. Caller holds a.mu.
func (a *Aggregator) windowSpansLocked(tl Timeline, max int) []obs.Span {
	if len(tl.Hops) == 0 {
		return nil
	}
	lo := tl.Hops[0].ArriveNs
	hi := tl.Hops[len(tl.Hops)-1].ArriveNs
	var out []obs.Span
	for _, site := range tl.Sites {
		st, ok := a.sites[site]
		if !ok {
			continue
		}
		for _, sp := range st.spans {
			if sp.StartNs <= hi && sp.EndNs >= lo {
				out = append(out, sp)
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// SpanTree joins the spans shipped by every site into the tree rooted
// at root — cross-site control-plane stitching: a GS create-chain span
// and the per-site apply-route spans it parents reassemble even though
// each arrived in a different site's report. The result is
// breadth-first from the root.
func (a *Aggregator) SpanTree(root uint64) []obs.Span {
	a.mu.Lock()
	defer a.mu.Unlock()
	byParent := make(map[uint64][]obs.Span)
	var rootSpan *obs.Span
	for _, st := range a.sites {
		for _, sp := range st.spans {
			if sp.ID == root && rootSpan == nil {
				cp := sp
				rootSpan = &cp
				continue
			}
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		}
	}
	if rootSpan == nil {
		return nil
	}
	out := []obs.Span{*rootSpan}
	queue := []uint64{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		kids := byParent[id]
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, k := range kids {
			out = append(out, k)
			queue = append(queue, k.ID)
		}
	}
	return out
}

// WritePrometheus renders the fleet-wide Prometheus exposition: every
// site's counters, gauges and histogram summaries as labelled series —
// {site="A"} always, plus the key label for keyed-family instances —
// so one scrape of the GS covers the fleet.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()

	type family struct {
		kind    string
		samples []string
	}
	fams := make(map[string]*family)
	order := []string{}
	fam := func(name, kind string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	// series name + labels for one instance: keyed instances fold to
	// the family base with the key as a label.
	series := func(st *siteState, site, inst string) (name, lbl string) {
		if pattern, ok := st.keyed[inst]; ok {
			if base, label, key, ok := metrics.KeyedParts(pattern, inst); ok {
				return metrics.PromName(base), fmt.Sprintf("%s=\"%s\",site=\"%s\"",
					metrics.PromLabelName(label), metrics.PromLabelValue(key), metrics.PromLabelValue(site))
			}
		}
		return metrics.PromName(inst), fmt.Sprintf("site=\"%s\"", metrics.PromLabelValue(site))
	}

	siteNames := make([]string, 0, len(a.sites))
	for s := range a.sites {
		siteNames = append(siteNames, s)
	}
	sort.Strings(siteNames)
	for _, site := range siteNames {
		st := a.sites[site]
		for _, inst := range sortedNames(st.counters) {
			name, lbl := series(st, site, inst)
			f := fam(name, "counter")
			f.samples = append(f.samples, fmt.Sprintf("%s{%s} %d", name, lbl, st.counters[inst]))
		}
		for _, inst := range sortedNamesF(st.gauges) {
			name, lbl := series(st, site, inst)
			f := fam(name, "gauge")
			f.samples = append(f.samples, fmt.Sprintf("%s{%s} %g", name, lbl, st.gauges[inst]))
		}
		for _, inst := range sortedNamesH(st.hists) {
			h := st.hists[inst]
			name, lbl := series(st, site, inst)
			name += "_seconds"
			f := fam(name, "summary")
			secs := func(ns int64) float64 { return float64(ns) / 1e9 }
			f.samples = append(f.samples,
				fmt.Sprintf("%s{%s,quantile=\"0.5\"} %g", name, lbl, secs(int64(h.Percentile(50)))),
				fmt.Sprintf("%s{%s,quantile=\"0.9\"} %g", name, lbl, secs(int64(h.Percentile(90)))),
				fmt.Sprintf("%s{%s,quantile=\"0.99\"} %g", name, lbl, secs(int64(h.Percentile(99)))),
				fmt.Sprintf("%s_sum{%s} %g", name, lbl, secs(h.SumNs)),
				fmt.Sprintf("%s_count{%s} %d", name, lbl, h.Count),
			)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, line := range f.samples {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedNames(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sortedNamesF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sortedNamesH(m map[string]metrics.HistogramSummary) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
