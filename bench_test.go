package switchboard

import (
	"os"
	"testing"

	"switchboard/internal/experiments"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation (Section 7) and prints it. These are macro-benchmarks: run
// them with -benchtime=1x, e.g.
//
//	go test -bench 'BenchmarkFig12a' -benchtime=1x
//
// or use cmd/sbbench for the same output without the testing harness.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		table, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			table.Fprint(os.Stdout)
		}
	}
}

func BenchmarkFig7OverheadAblation(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8ForwarderScaleOut(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFig9BusVsBroadcast(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10DynamicChaining(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkTable2EdgeSiteAddition(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkFig11E2EComparison(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkTable3SharedCache(b *testing.B)           { runExperiment(b, "table3") }
func BenchmarkFig12aThroughputVsCoverage(b *testing.B)  { runExperiment(b, "fig12a") }
func BenchmarkFig12bThroughputVsCPUByte(b *testing.B)   { runExperiment(b, "fig12b") }
func BenchmarkFig12cLatencyVsLoad(b *testing.B)         { runExperiment(b, "fig12c") }
func BenchmarkFig13aDPAblation(b *testing.B)            { runExperiment(b, "fig13a") }
func BenchmarkFig13bCloudCapacityPlanning(b *testing.B) { runExperiment(b, "fig13b") }
func BenchmarkFig13cVNFPlacement(b *testing.B)          { runExperiment(b, "fig13c") }
